#include "runtime/cluster.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/state_ops.h"

namespace seep::runtime {

Cluster::Cluster(const core::QueryGraph* graph, ClusterConfig config)
    : graph_(graph),
      config_(config),
      network_(&sim_, config.network),
      provider_(&sim_, config.provider, config.seed ^ 0xC10DD),
      pool_(&sim_, &provider_, config.pool) {}

Cluster::~Cluster() = default;

// --------------------------------------------------------------- deployment

Result<InstanceId> Cluster::DeployInstance(OperatorId op, VmId vm,
                                           core::KeyRange range,
                                           uint32_t source_index,
                                           uint32_t source_count) {
  const core::OperatorSpec* spec = graph_->Get(op);
  if (spec == nullptr) return Status::NotFound("unknown operator");
  const cloud::Vm* vm_info = provider_.GetVm(vm);
  if (vm_info == nullptr) return Status::NotFound("unknown VM");
  if (vm_info->state != cloud::VmState::kInUse &&
      vm_info->state != cloud::VmState::kPooled) {
    return Status::FailedPrecondition("VM not usable");
  }
  if (vm_to_instance_.contains(vm)) {
    return Status::AlreadyExists("VM already hosts an instance");
  }

  OperatorInstance::Params params;
  params.id = NextInstanceId();
  params.op = op;
  params.spec = spec;
  params.vm = vm;
  params.vm_capacity = vm_info->capacity;
  params.range = range;
  params.origin = NewOrigin();
  params.source_index = source_index;
  params.source_count = source_count;

  auto instance = std::make_unique<OperatorInstance>(this, params);
  const InstanceId id = params.id;
  instances_.emplace(id, std::move(instance));
  partitions_[op].push_back(id);
  vm_to_instance_[vm] = id;
  network_.Attach(vm);
  RecordVmsInUse();
  return id;
}

OperatorInstance* Cluster::GetInstance(InstanceId id) {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : it->second.get();
}

const OperatorInstance* Cluster::GetInstance(InstanceId id) const {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : it->second.get();
}

std::vector<InstanceId> Cluster::InstancesOf(OperatorId op) const {
  auto it = partitions_.find(op);
  return it == partitions_.end() ? std::vector<InstanceId>{} : it->second;
}

std::vector<InstanceId> Cluster::LiveInstancesOf(OperatorId op) const {
  std::vector<InstanceId> out;
  for (InstanceId id : InstancesOf(op)) {
    const OperatorInstance* inst = GetInstance(id);
    if (inst != nullptr && inst->alive() && !inst->stopped()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<InstanceId> Cluster::UpstreamInstancesOf(OperatorId op) const {
  std::vector<InstanceId> out;
  for (OperatorId up : graph_->Upstream(op)) {
    for (InstanceId id : LiveInstancesOf(up)) out.push_back(id);
  }
  return out;
}

void Cluster::RetireInstance(InstanceId id, bool release_vm) {
  StopInstance(id, release_vm);
  FinalizeRetire(id);
}

void Cluster::StopInstance(InstanceId id, bool release_vm) {
  OperatorInstance* inst = GetInstance(id);
  if (inst == nullptr) return;
  inst->Stop();
  if (release_vm && inst->vm() != kInvalidVm) {
    network_.Detach(inst->vm());
    vm_to_instance_.erase(inst->vm());
    (void)provider_.ReleaseVm(inst->vm());
  }
  RecordVmsInUse();
}

void Cluster::FinalizeRetire(InstanceId id) {
  OperatorInstance* inst = GetInstance(id);
  if (inst == nullptr) return;
  auto& members = partitions_[inst->op()];
  members.erase(std::remove(members.begin(), members.end(), id),
                members.end());
  backups_.Delete(id);
  RecordVmsInUse();
}

// ------------------------------------------------------------------- failure

Status Cluster::KillVm(VmId vm) {
  auto it = vm_to_instance_.find(vm);
  SEEP_RETURN_IF_ERROR(provider_.KillVm(vm));
  network_.Detach(vm);
  if (it != vm_to_instance_.end()) {
    OperatorInstance* inst = GetInstance(it->second);
    SEEP_CHECK(inst != nullptr);
    inst->MarkDead(Now());
    // Checkpoints stored on this VM die with it (paper §4.3's backup(o)
    // failure case).
    backups_.DropHeldBy(inst->id());
    SEEP_LOG(kInfo, Now()) << "VM " << vm << " failed; instance "
                           << inst->id() << " of op '"
                           << inst->spec().name << "' lost";
  }
  RecordVmsInUse();
  return Status::OK();
}

Status Cluster::KillOperator(OperatorId op) {
  const std::vector<InstanceId> live = LiveInstancesOf(op);
  if (live.empty()) return Status::NotFound("no live instance");
  const OperatorInstance* inst = GetInstance(live.front());
  return KillVm(inst->vm());
}

// ----------------------------------------------------------------- messaging

void Cluster::SendBatch(OperatorInstance* from, InstanceId to,
                        core::TupleBatch batch) {
  batch.from = from->id();
  const OperatorInstance* dest = GetInstance(to);
  if (dest == nullptr) return;
  const uint64_t bytes = batch.SerializedSize();
  auto shared = std::make_shared<core::TupleBatch>(std::move(batch));
  network_.Send(from->vm(), dest->vm(), bytes, [this, to, shared]() {
    OperatorInstance* target = GetInstance(to);
    if (target != nullptr) target->OnBatch(std::move(*shared));
  });
}

InstanceId Cluster::BackupHolderFor(const OperatorInstance* owner) const {
  const std::vector<InstanceId> upstream = UpstreamInstancesOf(owner->op());
  if (upstream.empty()) return kInvalidInstance;
  return config_.spread_backups
             ? core::ChooseBackupInstance(owner->id(), upstream)
             : upstream.front();
}

void Cluster::BackupCheckpoint(OperatorInstance* owner,
                               core::StateCheckpoint ckpt) {
  // Algorithm 1 line 2: spread backup load over upstream instances by hash
  // (unless disabled for the ablation baseline).
  const InstanceId holder_id = BackupHolderFor(owner);
  if (holder_id == kInvalidInstance) return;  // no live upstream
  OperatorInstance* holder = GetInstance(holder_id);
  SEEP_CHECK(holder != nullptr);

  const uint64_t bytes = ckpt.ByteSize();
  const InstanceId owner_id = owner->id();
  const OperatorId owner_op = owner->op();
  auto shared = std::make_shared<core::StateCheckpoint>(std::move(ckpt));

  network_.Send(
      owner->vm(), holder->vm(), bytes,
      // Checkpoint shipping is throttled background traffic: it must not
      // delay the data path (the paper checkpoints asynchronously).
      [this, owner_id, owner_op, holder_id, bytes, shared]() {
        OperatorInstance* h = GetInstance(holder_id);
        if (h == nullptr || !h->alive() || h->stopped()) return;
        OperatorInstance* o = GetInstance(owner_id);
        if (o == nullptr || !o->alive()) return;  // owner died meanwhile

        // Algorithm 1 lines 3/5-7: store (or apply a delta onto the held
        // base), superseding any previous holder.
        const core::InputPositions positions = shared->positions;
        if (shared->is_delta) {
          runtime::BackupStore::Entry* entry = backups_.Mutable(owner_id);
          if (entry == nullptr || entry->holder != holder_id) {
            ++metrics_.delta_apply_failures;
            return;  // base missing or moved; the next full resyncs
          }
          // Applied in place on the stored base: ApplyDelta validates before
          // mutating, so a rejected delta leaves the older consistent base.
          const Status applied = core::ApplyDelta(&entry->checkpoint, *shared);
          if (!applied.ok()) {
            ++metrics_.delta_apply_failures;
            return;  // out-of-order delta; keep the older consistent base
          }
        } else {
          backups_.Store(owner_id, holder_id, std::move(*shared));
        }
        metrics_.checkpoints_taken++;
        metrics_.checkpoint_bytes += bytes;

        // Algorithm 1 line 4: acknowledge the checkpointed positions to all
        // upstream instances so they can trim their output buffers.
        for (OperatorId up_op : graph_->Upstream(owner_op)) {
          for (InstanceId uid : LiveInstancesOf(up_op)) {
            OperatorInstance* u = GetInstance(uid);
            u->OnTrimAck(owner_op, owner_id, positions.Get(u->origin()));
          }
        }
      },
      /*background=*/true);
}

// -------------------------------------------------------------------- fences

uint64_t Cluster::RegisterFence(int expected, std::set<InstanceId> targets,
                                std::function<void(SimTime)> on_complete) {
  const uint64_t id = ++fence_counter_;
  fences_.emplace(
      id, Fence{std::move(targets), expected, std::move(on_complete)});
  return id;
}

void Cluster::HandleFence(uint64_t fence_id, OperatorInstance* at) {
  auto it = fences_.find(fence_id);
  if (it == fences_.end()) return;
  Fence& fence = it->second;
  if (!fence.targets.contains(at->id())) {
    // Not the destination: forward downstream so fences traverse
    // intermediate operators (source-replay recovery).
    for (OperatorId down : graph_->Downstream(at->op())) {
      for (InstanceId dest : LiveInstancesOf(down)) {
        core::TupleBatch fwd;
        fwd.fence_id = fence_id;
        fwd.replay = true;
        SendBatch(at, dest, std::move(fwd));
      }
    }
    return;
  }
  if (--fence.remaining > 0) return;
  auto on_complete = std::move(fence.on_complete);
  fences_.erase(it);
  if (on_complete) on_complete(sim_.Now());
}

// ---------------------------------------------------------------------- misc

void Cluster::RecordVmsInUse() {
  size_t in_use = 0;
  for (const auto& [id, inst] : instances_) {
    if (inst->alive() && !inst->stopped()) ++in_use;
  }
  metrics_.vms_in_use.Add(sim_.Now(), static_cast<double>(in_use));
}

}  // namespace seep::runtime
