#include "runtime/cluster.h"

#include "common/sync.h"
#include "runtime/operator_instance.h"

namespace seep::runtime {

Cluster::Cluster(const core::QueryGraph* graph, ClusterConfig config)
    : graph_(graph),
      config_(config),
      network_(&sim_, config.network),
      provider_(&sim_, config.provider, config.seed ^ 0xC10DD),
      pool_(&sim_, &provider_, config.pool),
      membership_(this),
      fences_(this) {
  if (config_.transport == TransportKind::kTcp) {
    transport_ = std::make_unique<TcpTransport>(this, config_.tcp);
  } else {
    transport_ = std::make_unique<SimTransport>(this);
  }
  // Background serialization stage of the async checkpoint pipeline. With
  // the sim backend it is a deterministic deferred event charged the same
  // serialization cost the synchronous pause models; with TCP it runs on
  // real per-VM worker threads drained by a pump.
  ckpt_serializer_ = std::make_unique<CkptSerializer>(
      &sim_, /*threaded=*/config_.transport == TransportKind::kTcp,
      config_.compress_checkpoints, config_.tcp.pump_interval,
      [this](const core::StateCheckpoint& snapshot) {
        const double kib =
            static_cast<double>(snapshot.processing.ByteSize() + 64) / 1024.0;
        return static_cast<SimTime>(kib * config_.serialize_cost_us_per_kb);
      },
      [this](SerializedCkptFrame frame) {
        // Completions are dispatched by the serializer's driver-side pump
        // (or a sim event); never directly by a worker thread.
        SEEP_ASSERT_RUN_ON(sync::DriverThread);
        ShipSerializedCheckpoint(this, std::move(frame));
      });
  if (config_.audit_level > verify::kAuditOff) {
    auditor_ = std::make_unique<verify::InvariantAuditor>(config_.audit_level);
  }
}

Cluster::~Cluster() = default;

void Cluster::InstallRoutes(OperatorId down_op,
                            std::vector<core::RoutingState::Route> routes) {
  if (auditor_) auditor_->OnRoutesInstalled(down_op, routes);
  routing_.SetRoutes(down_op, std::move(routes));
}

}  // namespace seep::runtime
