#include "runtime/cluster.h"

#include "runtime/operator_instance.h"

namespace seep::runtime {

Cluster::Cluster(const core::QueryGraph* graph, ClusterConfig config)
    : graph_(graph),
      config_(config),
      network_(&sim_, config.network),
      provider_(&sim_, config.provider, config.seed ^ 0xC10DD),
      pool_(&sim_, &provider_, config.pool),
      membership_(this),
      fences_(this),
      transport_(std::make_unique<SimTransport>(this)) {}

Cluster::~Cluster() = default;

}  // namespace seep::runtime
