#include "runtime/ckpt_pipeline.h"

#include <utility>

#include "common/macros.h"
#include "serde/block_codec.h"
#include "serde/frame.h"

namespace seep::runtime {

namespace {

// Buffer entries the capture encodes: a full capture keeps every live
// buffer (including empty ones, which restore recreates); a delta keeps
// only extents that actually carry tuples, matching MakeDeltaCheckpoint.
size_t CapturedBufferEntries(const CheckpointCapture& cap) {
  if (!cap.ckpt.is_delta) return cap.extents.size();
  size_t n = 0;
  for (const auto& [op_id, extent] : cap.extents) {
    if (extent.tuples > 0) ++n;
  }
  return n;
}

}  // namespace

void MaterializeCaptureBuffer(const core::BufferState& live,
                              CheckpointCapture* cap) {
  if (cap->materialized) return;
  cap->materialized = true;
  if (!cap->ckpt.is_delta) {
    // Full capture: the extents cover the whole live region, so a straight
    // copy is both the cheapest and byte-identical to the old path.
    cap->ckpt.buffer = live;
    return;
  }
  for (const auto& [op_id, extent] : cap->extents) {
    if (extent.tuples == 0) continue;
    const core::TupleBuffer* buf = live.Get(op_id);
    if (buf == nullptr) continue;
    for (auto it = buf->UpperBound(extent.from_exclusive);
         it != buf->end() && it->timestamp <= extent.back; ++it) {
      cap->ckpt.buffer.Append(op_id, *it);
    }
  }
}

size_t CapturedEncodedSize(const CheckpointCapture& cap) {
  SEEP_DCHECK(!cap.materialized);
  // EncodedSize() of the unmaterialized checkpoint counts an empty buffer
  // section; swap it for the captured one computed from the extents.
  size_t total = cap.ckpt.EncodedSize() - cap.ckpt.buffer.EncodedSize();
  total += serde::Encoder::VarintSize(CapturedBufferEntries(cap));
  for (const auto& [op_id, extent] : cap.extents) {
    if (cap.ckpt.is_delta && extent.tuples == 0) continue;
    total += 4 + serde::Encoder::VarintSize(extent.tuples) + extent.bytes;
  }
  return total;
}

void EncodeCapturedCheckpoint(const core::BufferState& live,
                              const CheckpointCapture& cap,
                              serde::Encoder* enc) {
  SEEP_CHECK(!cap.materialized);
  const core::StateCheckpoint& c = cap.ckpt;
  enc->Reserve(CapturedEncodedSize(cap));
  // Field order mirrors StateCheckpoint::Encode exactly; keep in sync.
  enc->AppendFixed32(c.op);
  enc->AppendFixed32(c.instance);
  enc->AppendFixed64(c.origin);
  enc->AppendFixed64(c.key_range.lo);
  enc->AppendFixed64(c.key_range.hi);
  enc->AppendVarintSigned64(c.out_clock);
  enc->AppendVarint64(c.seq);
  enc->AppendVarintSigned64(c.taken_at);
  c.positions.Encode(enc);
  c.processing.Encode(enc);
  // The buffer section streams straight from the live buffers.
  enc->AppendVarint64(CapturedBufferEntries(cap));
  for (const auto& [op_id, extent] : cap.extents) {
    if (c.is_delta && extent.tuples == 0) continue;
    enc->AppendFixed32(op_id);
    enc->AppendVarint64(extent.tuples);
    const core::TupleBuffer* buf = live.Get(op_id);
    SEEP_CHECK(buf != nullptr);
    if (c.is_delta) {
      for (auto it = buf->UpperBound(extent.from_exclusive);
           it != buf->end() && it->timestamp <= extent.back; ++it) {
        it->Encode(enc);
      }
    } else {
      for (const core::Tuple& t : *buf) t.Encode(enc);
    }
  }
  enc->AppendU8(c.is_delta ? 1 : 0);
  enc->AppendVarint64(c.base_seq);
  enc->AppendVarint64(c.deleted_keys.size());
  for (KeyHash k : c.deleted_keys) enc->AppendFixed64(k);
  enc->AppendVarint64(c.buffer_front.size());
  for (const auto& [op_id, front] : c.buffer_front) {
    enc->AppendFixed32(op_id);
    enc->AppendVarintSigned64(front);
  }
}

// --------------------------------------------------------------- serializer

CkptSerializer::CkptSerializer(sim::Simulation* sim, bool threaded,
                               bool compress, SimTime pump_interval,
                               CostFn cost, DoneFn on_done)
    : sim_(sim),
      threaded_(threaded),
      compress_(compress),
      pump_interval_(pump_interval),
      cost_(std::move(cost)),
      on_done_(std::move(on_done)) {}

CkptSerializer::~CkptSerializer() {
  // Flip the stop flags and move the thread handles out under the lock,
  // then join outside it: workers reacquire mu_ to publish their last frame
  // before exiting, and workers_ itself is mu_-guarded state the old code
  // iterated unlocked (lint rule: every workers_ access holds mu_).
  std::vector<std::thread> threads;
  {
    sync::MutexLock lock(&mu_);
    for (auto& [vm, ws] : workers_) {
      ws->stop = true;
      threads.push_back(std::move(ws->thread));
    }
  }
  cv_.NotifyAll();
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

SerializedCkptFrame CkptSerializer::BuildFrame(const Job& job, bool compress) {
  serde::Encoder enc;
  job.snapshot.Encode(&enc);  // Encode reserves EncodedSize() exactly
  std::vector<uint8_t> payload = std::move(enc).TakeBuffer();

  SerializedCkptFrame out;
  out.owner = job.owner;
  out.owner_op = job.owner_op;
  out.seq = job.seq;
  out.captured_at = job.captured_at;
  out.raw_bytes = payload.size();
  if (compress) {
    std::vector<uint8_t> packed = serde::BlockCompress(payload);
    if (packed.size() < payload.size()) {
      payload = std::move(packed);
      out.compressed = true;
    }
  }
  out.frame = serde::FramePayload(payload);
  return out;
}

void CkptSerializer::Submit(Job job) {
  // Submit mutates driver-confined accounting (outstanding_) and, in sim
  // mode, schedules events: both are driver-thread-only operations.
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  ++outstanding_;
  if (!threaded_) {
    // Deterministic deferral: charge the modeled serialization cost as a
    // simulation delay, then build the frame inside the event. The closure
    // must stay copyable, hence the shared_ptr.
    const SimTime delay = cost_ ? cost_(job.snapshot) : 0;
    auto shared = std::make_shared<Job>(std::move(job));
    sim_->Schedule(delay, [this, shared]() {
      SEEP_ASSERT_RUN_ON(sync::DriverThread);
      --outstanding_;
      on_done_(BuildFrame(*shared, compress_));
    });
    return;
  }
  {
    sync::MutexLock lock(&mu_);
    std::unique_ptr<WorkerState>& ws = workers_[job.vm];
    if (ws == nullptr) {
      ws = std::make_unique<WorkerState>();
      ws->thread = std::thread([this, w = ws.get()]() { WorkerLoop(w); });
    }
    ws->queue.push_back(std::move(job));
  }
  cv_.NotifyAll();
  if (!pump_scheduled_) {
    pump_scheduled_ = true;
    sim_->Schedule(pump_interval_, [this]() {
      SEEP_ASSERT_RUN_ON(sync::DriverThread);
      Pump();
    });
  }
}

void CkptSerializer::Pump() {
  // The done-queue drain re-enters protocol code through on_done_; draining
  // it from any thread but the driver would hand checkpoint completions to
  // a thread that must not touch protocol state.
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  std::deque<SerializedCkptFrame> ready;
  {
    sync::MutexLock lock(&mu_);
    ready.swap(done_);
  }
  for (SerializedCkptFrame& frame : ready) {
    --outstanding_;
    on_done_(std::move(frame));
  }
  // Keep polling only while work is in flight, so a quiesced simulation
  // (RunAll) is not kept alive by an idle heartbeat.
  if (outstanding_ > 0) {
    sim_->Schedule(pump_interval_, [this]() {
      SEEP_ASSERT_RUN_ON(sync::DriverThread);
      Pump();
    });
  } else {
    pump_scheduled_ = false;
  }
}

void CkptSerializer::WorkerLoop(WorkerState* ws) {
  sync::ScopedThreadRole role(sync::CkptWorkerThread);
  while (true) {
    Job job;
    {
      sync::MutexLock lock(&mu_);
      cv_.Wait(&mu_, [this, ws]() {
        mu_.AssertHeld();
        return ws->stop || !ws->queue.empty();
      });
      if (ws->stop && ws->queue.empty()) return;
      job = std::move(ws->queue.front());
      ws->queue.pop_front();
    }
    SerializedCkptFrame frame = BuildFrame(job, compress_);
    sync::MutexLock lock(&mu_);
    done_.push_back(std::move(frame));
  }
}

// ------------------------------------------------------------------- chunks

void EncodeChunkHeader(const CkptChunkHeader& h, serde::Encoder* enc) {
  enc->AppendFixed32(h.owner);
  enc->AppendFixed32(h.owner_op);
  enc->AppendFixed32(h.holder);
  enc->AppendVarint64(h.seq);
  enc->AppendVarint64(h.index);
  enc->AppendVarint64(h.count);
  enc->AppendVarint64(h.frame_bytes);
  enc->AppendVarint64(h.raw_bytes);
  enc->AppendU8(h.compressed ? 1 : 0);
}

[[nodiscard]] Result<CkptChunkHeader> DecodeChunkHeader(serde::Decoder* dec) {
  CkptChunkHeader h;
  SEEP_ASSIGN_OR_RETURN(h.owner, dec->ReadFixed32());
  SEEP_ASSIGN_OR_RETURN(h.owner_op, dec->ReadFixed32());
  SEEP_ASSIGN_OR_RETURN(h.holder, dec->ReadFixed32());
  SEEP_ASSIGN_OR_RETURN(h.seq, dec->ReadVarint64());
  uint64_t index, count;
  SEEP_ASSIGN_OR_RETURN(index, dec->ReadVarint64());
  SEEP_ASSIGN_OR_RETURN(count, dec->ReadVarint64());
  if (index > UINT32_MAX || count > UINT32_MAX) {
    return Status::Corruption("checkpoint chunk index out of range");
  }
  h.index = static_cast<uint32_t>(index);
  h.count = static_cast<uint32_t>(count);
  SEEP_ASSIGN_OR_RETURN(h.frame_bytes, dec->ReadVarint64());
  SEEP_ASSIGN_OR_RETURN(h.raw_bytes, dec->ReadVarint64());
  uint8_t compressed;
  SEEP_ASSIGN_OR_RETURN(compressed, dec->ReadU8());
  h.compressed = compressed != 0;
  return h;
}

namespace {
// Partial streams an overwhelmed or wedged holder keeps before evicting the
// oldest; each costs at most one frame of memory.
constexpr size_t kMaxPendingStreams = 64;
}  // namespace

std::optional<std::vector<uint8_t>> CkptChunkReassembler::OnChunk(
    const CkptChunkHeader& h, const uint8_t* data, size_t n) {
  if (h.count == 0 ||
      h.frame_bytes > serde::kDefaultMaxFramePayload + serde::kFrameHeaderBytes)
    return std::nullopt;
  const Key key{h.owner, h.seq, h.holder};
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    if (h.index != 0) return std::nullopt;  // mid-stream chunk of a lost head
    while (pending_.size() >= kMaxPendingStreams) {
      pending_.erase(pending_.begin());
    }
    it = pending_.emplace(key, Pending{}).first;
    it->second.count = h.count;
    it->second.frame_bytes = h.frame_bytes;
    it->second.frame.reserve(h.frame_bytes);
  }
  Pending& p = it->second;
  if (h.index != p.next_index || h.count != p.count ||
      h.frame_bytes != p.frame_bytes || p.frame.size() + n > p.frame_bytes) {
    pending_.erase(it);  // corrupt stream: drop, next checkpoint supersedes
    return std::nullopt;
  }
  p.frame.insert(p.frame.end(), data, data + n);
  ++p.next_index;
  if (p.next_index < p.count) return std::nullopt;
  if (p.frame.size() != p.frame_bytes) {
    pending_.erase(it);
    return std::nullopt;
  }
  std::vector<uint8_t> frame = std::move(p.frame);
  pending_.erase(it);
  return frame;
}

void CkptChunkReassembler::ForgetThrough(InstanceId owner, uint64_t seq) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (std::get<0>(it->first) == owner && std::get<1>(it->first) <= seq) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void CkptChunkReassembler::ForgetOwner(InstanceId owner) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (std::get<0>(it->first) == owner) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace seep::runtime
