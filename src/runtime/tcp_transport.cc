#include "runtime/tcp_transport.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/sync.h"
#include "net/local_cluster.h"
#include "net/wire.h"
#include "runtime/cluster.h"
#include "runtime/operator_instance.h"
#include "serde/decoder.h"
#include "serde/encoder.h"

namespace seep::runtime {

/// Everything shared between the sim driver thread and the worker threads.
/// Invariant: `in_flight[vm]` over-approximates messages addressed to `vm`
/// that were accepted by the net layer but have not yet reached the inbox —
/// it is zeroed when `vm` detaches (traffic to a dead VM is dead by
/// definition) and decrements are clamped, so the pump's bounded wait can
/// never wedge on a lost frame.
struct TcpTransport::Impl {
  explicit Impl(net::WorkerOptions options) : cluster(options) {}

  net::LocalCluster cluster;

  sync::Mutex mu;
  sync::CondVar cv;
  std::deque<net::Message> inbox SEEP_GUARDED_BY(mu);
  std::unordered_map<VmId, uint64_t> in_flight SEEP_GUARDED_BY(mu);
  uint64_t total_in_flight SEEP_GUARDED_BY(mu) = 0;

  // Pending ShipState completions, keyed by ship_id. Driver thread only —
  // never touched by the worker-thread callbacks.
  struct ShipEntry {
    VmId to = kInvalidVm;
    std::function<void()> on_delivery;
  };
  std::unordered_map<uint64_t, ShipEntry> ships
      SEEP_GUARDED_BY(sync::DriverThread);
  uint64_t next_ship_id SEEP_GUARDED_BY(sync::DriverThread) = 0;

  std::atomic<uint64_t> disconnects{0};

  void DecInFlightLocked(VmId vm, uint64_t n) SEEP_REQUIRES(mu) {
    auto it = in_flight.find(vm);
    if (it == in_flight.end()) return;
    const uint64_t dec = std::min(it->second, n);
    it->second -= dec;
    total_in_flight -= dec;
  }

  /// Queues `msg` on `from`'s worker with in-flight accounting, translating
  /// net-layer status into the transport's pressure signal.
  SendPressure Ship(VmId from, VmId to, const net::Message& msg)
      SEEP_EXCLUDES(mu) {
    {
      sync::MutexLock lock(&mu);
      auto it = in_flight.find(to);
      if (it == in_flight.end()) return SendPressure::kNone;  // dead VM
      ++it->second;
      ++total_in_flight;
    }
    const net::SendStatus st = cluster.Post(from, to, msg);
    if (st == net::SendStatus::kOverflow || st == net::SendStatus::kClosed) {
      sync::MutexLock lock(&mu);
      DecInFlightLocked(to, 1);
      cv.NotifyOne();
    }
    return st == net::SendStatus::kPressured ? SendPressure::kPressured
                                             : SendPressure::kNone;
  }
};

TcpTransport::TcpTransport(Cluster* cluster, TcpTransportConfig config)
    : cluster_(cluster), config_(config) {
  net::WorkerOptions options;
  options.queue_limits.pressure_bytes = config_.queue_pressure_bytes;
  options.queue_limits.max_bytes = config_.queue_max_bytes;
  options.max_frame_payload = config_.max_frame_bytes;
  impl_ = std::make_unique<Impl>(options);
  SchedulePump();
}

TcpTransport::~TcpTransport() { impl_->cluster.Shutdown(); }

net::LocalCluster* TcpTransport::net_cluster() { return &impl_->cluster; }

uint64_t TcpTransport::disconnects_observed() const {
  return impl_->disconnects.load(std::memory_order_relaxed);
}

uint64_t TcpTransport::messages_delivered() const {
  return impl_->cluster.TotalStats().messages_delivered;
}

uint64_t TcpTransport::frames_dropped() const {
  return impl_->cluster.TotalStats().frames_dropped;
}

void TcpTransport::AttachVm(VmId vm) {
  // Mirror into the sim network so its attachment directory (and any code
  // consulting IsAttached) stays coherent; no sim traffic flows through it.
  cluster_->network()->Attach(vm);
  Impl* impl = impl_.get();
  const Status started = impl->cluster.StartWorker(
      vm,
      /*on_message=*/
      [impl, vm](net::Message msg) {
        sync::MutexLock lock(&impl->mu);
        impl->DecInFlightLocked(vm, 1);
        impl->inbox.push_back(std::move(msg));
        impl->cv.NotifyOne();
      },
      /*on_peer_disconnect=*/
      [impl](VmId) {
        impl->disconnects.fetch_add(1, std::memory_order_relaxed);
      },
      /*on_frames_dropped=*/
      [impl](VmId peer, size_t n) {
        sync::MutexLock lock(&impl->mu);
        impl->DecInFlightLocked(peer, n);
        impl->cv.NotifyOne();
      });
  SEEP_CHECK(started.ok());
  sync::MutexLock lock(&impl->mu);
  impl->in_flight.try_emplace(vm, 0);
}

void TcpTransport::DetachVm(VmId vm) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  cluster_->network()->Detach(vm);
  // Kill first (joins the worker thread), then zero the accounting: frames
  // already handed to this VM's kernel buffers die unobserved, and the
  // pump must not wait for them.
  impl_->cluster.KillWorker(vm);
  {
    sync::MutexLock lock(&impl_->mu);
    impl_->DecInFlightLocked(vm, UINT64_MAX);
    impl_->in_flight.erase(vm);
    impl_->cv.NotifyOne();
  }
  // Pending state shipments to the dead VM will never complete (sim
  // parity: sim::Network drops deliveries to detached endpoints).
  for (auto it = impl_->ships.begin(); it != impl_->ships.end();) {
    it = it->second.to == vm ? impl_->ships.erase(it) : std::next(it);
  }
}

SendPressure TcpTransport::SendBatch(OperatorInstance* from, InstanceId to,
                                     core::TupleBatch batch) {
  batch.from = from->id();
  const OperatorInstance* dest = cluster_->membership()->GetInstance(to);
  if (dest == nullptr) return SendPressure::kNone;

  net::Message msg;
  msg.type = net::MessageType::kBatch;
  msg.from_vm = from->vm();
  msg.to_vm = dest->vm();
  serde::Encoder enc;
  enc.AppendVarint64(to);  // destination instance, then the batch itself
  batch.Encode(&enc);
  msg.body = std::move(enc).TakeBuffer();
  return impl_->Ship(from->vm(), dest->vm(), msg);
}

InstanceId TcpTransport::BackupHolderFor(
    const OperatorInstance* owner) const {
  return ChooseBackupHolder(cluster_, owner);
}

void TcpTransport::BackupCheckpoint(OperatorInstance* owner,
                                    core::StateCheckpoint ckpt) {
  const InstanceId holder_id = BackupHolderFor(owner);
  if (holder_id == kInvalidInstance) return;  // no live upstream
  OperatorInstance* holder = cluster_->membership()->GetInstance(holder_id);
  SEEP_CHECK(holder != nullptr);

  net::Message msg;
  msg.type = net::MessageType::kCheckpoint;
  msg.from_vm = owner->vm();
  msg.to_vm = holder->vm();
  serde::Encoder enc;
  enc.AppendVarint64(owner->id());
  enc.AppendVarint64(owner->op());
  enc.AppendVarint64(holder_id);
  enc.AppendVarint64(ckpt.ByteSize());
  ckpt.Encode(&enc);
  msg.body = std::move(enc).TakeBuffer();
  // Pacing: the pump's bounded wait drains in-flight counts, so the
  // backup path needs no pressure feedback.
  // seep-ok: unchecked-status -- paced by in-flight accounting
  (void)impl_->Ship(owner->vm(), holder->vm(), msg);
}

CheckpointShipment TcpTransport::PrepareBackup(OperatorInstance* owner,
                                               CheckpointCapture* capture) {
  CheckpointShipment ship;
  // ByteSize() of the unmaterialized capture counts an empty buffer; the
  // extents carry the exact buffer bytes, so the sum equals the
  // materialized checkpoint's ByteSize.
  ship.logical_bytes = capture->ckpt.ByteSize();
  for (const auto& entry : capture->extents) {
    ship.logical_bytes += entry.second.bytes;
  }
  serde::Encoder enc;
  EncodeCapturedCheckpoint(owner->buffer_state(), *capture, &enc);
  ship.payload = std::move(enc).TakeBuffer();
  return ship;
}

void TcpTransport::ShipBackup(OperatorInstance* owner,
                              CheckpointShipment ship) {
  const InstanceId holder_id = BackupHolderFor(owner);
  if (holder_id == kInvalidInstance) return;  // no live upstream
  OperatorInstance* holder = cluster_->membership()->GetInstance(holder_id);
  SEEP_CHECK(holder != nullptr);

  net::Message msg;
  msg.type = net::MessageType::kCheckpoint;
  msg.from_vm = owner->vm();
  msg.to_vm = holder->vm();
  serde::Encoder enc;
  enc.AppendVarint64(owner->id());
  enc.AppendVarint64(owner->op());
  enc.AppendVarint64(holder_id);
  enc.AppendVarint64(ship.logical_bytes);
  enc.Reserve(ship.payload.size());
  enc.AppendRaw(ship.payload.data(), ship.payload.size());
  msg.body = std::move(enc).TakeBuffer();
  // Pacing: the pump's bounded wait drains in-flight counts, so the
  // backup path needs no pressure feedback.
  // seep-ok: unchecked-status -- paced by in-flight accounting
  (void)impl_->Ship(owner->vm(), holder->vm(), msg);
}

void TcpTransport::ShipCheckpointFrame(OperatorInstance* owner,
                                       SerializedCkptFrame frame) {
  const InstanceId holder_id = BackupHolderFor(owner);
  if (holder_id == kInvalidInstance) return;  // no live upstream
  OperatorInstance* holder = cluster_->membership()->GetInstance(holder_id);
  SEEP_CHECK(holder != nullptr);

  const size_t chunk_bytes =
      std::max<size_t>(1, cluster_->config().checkpoint_chunk_bytes);
  const size_t total = frame.frame.size();
  const uint32_t count =
      static_cast<uint32_t>((total + chunk_bytes - 1) / chunk_bytes);

  CkptChunkHeader header;
  header.owner = frame.owner;
  header.owner_op = frame.owner_op;
  header.holder = holder_id;
  header.seq = frame.seq;
  header.count = count;
  header.frame_bytes = total;
  header.raw_bytes = frame.raw_bytes;
  header.compressed = frame.compressed;

  // One kCheckpointChunk message per chunk. The per-link TCP stream is
  // FIFO, so chunks arrive in index order at the holder's pump, but data
  // batches posted between them interleave freely.
  for (uint32_t i = 0; i < count; ++i) {
    header.index = i;
    const size_t begin = static_cast<size_t>(i) * chunk_bytes;
    const size_t len = std::min(chunk_bytes, total - begin);
    net::Message msg;
    msg.type = net::MessageType::kCheckpointChunk;
    msg.from_vm = owner->vm();
    msg.to_vm = holder->vm();
    serde::Encoder enc;
    EncodeChunkHeader(header, &enc);
    enc.Reserve(len);
    enc.AppendRaw(frame.frame.data() + begin, len);
    msg.body = std::move(enc).TakeBuffer();
    // Pacing: the pump's bounded wait drains in-flight counts, so the
    // backup path needs no pressure feedback.
    // seep-ok: unchecked-status -- paced by in-flight accounting
    (void)impl_->Ship(owner->vm(), holder->vm(), msg);
  }
}

void TcpTransport::ShipState(VmId from, VmId to, uint64_t size_bytes,
                             std::function<void()> on_delivery) {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  const uint64_t id = ++impl_->next_ship_id;
  net::Message msg;
  msg.type = net::MessageType::kStateShip;
  msg.from_vm = from;
  msg.to_vm = to;
  msg.ship_id = id;
  serde::Encoder enc;
  enc.AppendVarint64(size_bytes);
  // Real bytes on the wire so bulk shipping exercises the stream path, but
  // capped: the logical size alone decides the protocol's behaviour.
  const size_t filler =
      static_cast<size_t>(std::min(size_bytes, config_.ship_payload_cap));
  enc.Reserve(filler);
  for (size_t i = 0; i < filler; ++i) enc.AppendU8(0xA5);
  msg.body = std::move(enc).TakeBuffer();

  impl_->ships[id] = Impl::ShipEntry{to, std::move(on_delivery)};
  bool dead = false;
  {
    sync::MutexLock lock(&impl_->mu);
    auto it = impl_->in_flight.find(to);
    if (it == impl_->in_flight.end()) {
      dead = true;  // dead destination: delivery never happens
    } else {
      ++it->second;
      ++impl_->total_in_flight;
    }
  }
  if (dead) {
    impl_->ships.erase(id);
    return;
  }
  const net::SendStatus st = impl_->cluster.Post(from, to, msg);
  if (st == net::SendStatus::kOverflow || st == net::SendStatus::kClosed) {
    {
      sync::MutexLock lock(&impl_->mu);
      impl_->DecInFlightLocked(to, 1);
    }
    impl_->ships.erase(id);
  }
}

void TcpTransport::SchedulePump() {
  cluster_->simulation()->Schedule(config_.pump_interval,
                                   [this]() { Pump(); });
}

void TcpTransport::NoteWireDecodeFailure(const char* what,
                                         const Status& status) {
  ++cluster_->metrics()->wire_decode_failures;
  SEEP_LOG(kWarn, 0) << "dropping wire message: " << what
                     << " failed to decode: " << status.message();
}

void TcpTransport::Pump() {
  SEEP_ASSERT_RUN_ON(sync::DriverThread);
  std::deque<net::Message> drained;
  {
    sync::MutexLock lock(&impl_->mu);
    // Bound the sim-time skew between send and delivery: while messages are
    // in flight, give them a short wall-clock window to land before sim
    // time advances past this pump. The wait is bounded, so a stalled link
    // (reconnect backoff, dead peer mid-detach) delays the simulation by at
    // most pump_wait_micros per pump instead of wedging it.
    impl_->cv.WaitFor(&impl_->mu,
                      std::chrono::microseconds(config_.pump_wait_micros),
                      [this] {
                        impl_->mu.AssertHeld();
                        return impl_->total_in_flight == 0 ||
                               !impl_->inbox.empty();
                      });
    drained.swap(impl_->inbox);
  }
  for (net::Message& msg : drained) {
    switch (msg.type) {
      case net::MessageType::kBatch: {
        serde::Decoder dec(msg.body);
        auto to = dec.ReadVarint64();
        if (!to.ok()) {
          NoteWireDecodeFailure("batch target", to.status());
          break;
        }
        auto batch = core::TupleBatch::Decode(&dec);
        if (!batch.ok()) {
          NoteWireDecodeFailure("tuple batch", batch.status());
          break;
        }
        OperatorInstance* target = cluster_->membership()->GetInstance(
            static_cast<InstanceId>(to.value()));
        if (target != nullptr) target->OnBatch(std::move(batch).value());
        break;
      }
      case net::MessageType::kCheckpoint: {
        serde::Decoder dec(msg.body);
        auto owner_id = dec.ReadVarint64();
        auto owner_op = dec.ReadVarint64();
        auto holder_id = dec.ReadVarint64();
        auto bytes = dec.ReadVarint64();
        if (!owner_id.ok() || !owner_op.ok() || !holder_id.ok() ||
            !bytes.ok()) {
          NoteWireDecodeFailure("checkpoint envelope",
                                Status::InvalidArgument("short varints"));
          break;
        }
        auto ckpt = core::StateCheckpoint::Decode(&dec);
        if (!ckpt.ok()) {
          NoteWireDecodeFailure("checkpoint body", ckpt.status());
          break;
        }
        DeliverCheckpointToHolder(
            cluster_, static_cast<InstanceId>(owner_id.value()),
            static_cast<OperatorId>(owner_op.value()),
            static_cast<InstanceId>(holder_id.value()), bytes.value(),
            std::move(ckpt).value());
        break;
      }
      case net::MessageType::kCheckpointChunk: {
        serde::Decoder dec(msg.body);
        auto header = DecodeChunkHeader(&dec);
        if (!header.ok()) {
          NoteWireDecodeFailure("chunk header", header.status());
          break;
        }
        const uint8_t* data = msg.body.data() + dec.position();
        const size_t n = msg.body.size() - dec.position();
        DeliverCheckpointChunk(cluster_, header.value(), data, n);
        break;
      }
      case net::MessageType::kStateShip: {
        auto it = impl_->ships.find(msg.ship_id);
        if (it == impl_->ships.end()) break;  // cancelled by DetachVm
        std::function<void()> cb = std::move(it->second.on_delivery);
        impl_->ships.erase(it);
        if (cb) cb();
        break;
      }
      case net::MessageType::kHello:
      case net::MessageType::kControl:
        break;  // hellos stay inside net/; no control users yet
    }
  }
  SchedulePump();
}

}  // namespace seep::runtime
