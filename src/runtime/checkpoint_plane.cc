#include "runtime/checkpoint_plane.h"

#include <utility>

#include "common/sync.h"

#include "runtime/cluster.h"
#include "runtime/operator_instance.h"

namespace seep::runtime {

void CheckpointPlane::StartSchedule() { ScheduleTimer(); }

void CheckpointPlane::ScheduleTimer() {
  cluster_->simulation()->Schedule(
      cluster_->config().checkpoint_interval, [this]() {
        SEEP_ASSERT_RUN_ON(sync::DriverThread);
        if (!inst_->alive() || inst_->stopped()) return;
        if (!suspended_) {
          JobScheduler::Job job;
          job.kind = JobScheduler::Job::Kind::kCheckpoint;
          inst_->EnqueueJob(std::move(job));
        }
        ScheduleTimer();
      });
}

void CheckpointPlane::Suspend() {
  suspended_ = true;
  if (auto* audit = cluster_->audit()) {
    audit->OnCheckpointsSuspended(inst_->id());
  }
}

void CheckpointPlane::Resume() {
  suspended_ = false;
  if (auto* audit = cluster_->audit()) {
    audit->OnCheckpointsResumed(inst_->id());
  }
}

CheckpointCapture CheckpointPlane::Capture(bool delta) {
  return delta ? CaptureDelta() : CaptureFull();
}

CheckpointCapture CheckpointPlane::CaptureFull() {
  core::Operator* op = inst_->operator_impl();
  CheckpointCapture cap;
  core::StateCheckpoint& c = cap.ckpt;
  c.op = inst_->op();
  c.instance = inst_->id();
  c.origin = inst_->origin();
  c.key_range = inst_->key_range();
  c.out_clock = inst_->out_clock();
  c.seq = ++ckpt_seq_;
  c.taken_at = cluster_->Now();
  c.positions = inst_->positions();
  if (op != nullptr && op->IsStateful()) {
    c.processing = op->GetProcessingState();
    // A full checkpoint captures everything; reset delta tracking so the
    // next incremental checkpoint starts from this base.
    op->ClearStateDelta();
  }
  // The buffers themselves are not copied here: the capture records their
  // extents (positions + precomputed counts/bytes), and the tuples are
  // materialized or encoded by a later pipeline stage.
  for (const auto& [op_id, tuples] : inst_->buffer_state().buffers()) {
    BufferExtent extent;
    extent.from_exclusive = INT64_MIN;
    extent.back = tuples.empty() ? INT64_MIN : tuples.back().timestamp;
    extent.tuples = tuples.size();
    extent.bytes = tuples.ByteSize();
    cap.extents[op_id] = extent;
    shipped_buffer_back_[op_id] =
        tuples.empty() ? inst_->out_clock() : tuples.back().timestamp;
  }
  return cap;
}

CheckpointCapture CheckpointPlane::CaptureDelta() {
  CheckpointCapture cap;
  core::StateCheckpoint& c = cap.ckpt;
  c.op = inst_->op();
  c.instance = inst_->id();
  c.origin = inst_->origin();
  c.key_range = inst_->key_range();
  c.out_clock = inst_->out_clock();
  c.seq = ckpt_seq_ + 1;
  c.base_seq = ckpt_seq_;
  ++ckpt_seq_;
  c.taken_at = cluster_->Now();
  c.positions = inst_->positions();
  c.is_delta = true;
  // The operator's dirty-key tracking makes this O(changed keys): only
  // entries written since the base checkpoint are captured.
  core::StateDelta delta = inst_->operator_impl()->TakeProcessingStateDelta();
  c.processing = std::move(delta.updated);
  c.deleted_keys = std::move(delta.deleted);
  // Buffer delta: the unshipped suffix past the last shipped timestamp,
  // plus the current buffer fronts so the holder can mirror our trims.
  // Buffers are timestamp-sorted, so the suffix starts at a binary search;
  // only its sizes are summed here — the tuples are not copied.
  for (const auto& [op_id, tuples] : inst_->buffer_state().buffers()) {
    const int64_t shipped = [&] {
      auto it = shipped_buffer_back_.find(op_id);
      return it == shipped_buffer_back_.end() ? INT64_MIN : it->second;
    }();
    c.buffer_front[op_id] =
        tuples.empty() ? inst_->out_clock() + 1 : tuples.front().timestamp;
    BufferExtent extent;
    extent.from_exclusive = shipped;
    if (!tuples.empty() && tuples.back().timestamp > shipped) {
      extent.back = tuples.back().timestamp;
      auto it = tuples.UpperBound(shipped);
      extent.tuples = static_cast<size_t>(tuples.end() - it);
      for (; it != tuples.end(); ++it) extent.bytes += it->SerializedSize();
    }
    cap.extents[op_id] = extent;
    shipped_buffer_back_[op_id] =
        tuples.empty() ? inst_->out_clock() : tuples.back().timestamp;
  }
  return cap;
}

void CheckpointPlane::ShipAsync(CheckpointCapture cap) {
  if (!inst_->alive() || inst_->stopped() || suspended_) {
    // Clean abort: the capture is discarded before serialization. Its
    // sequence number was consumed, so the holder's stored seq now trails
    // ckpt_seq_ and CanCheckpointIncrementally forces the next checkpoint
    // to be a full resync — no torn lineage.
    ++cluster_->metrics()->async_ckpts_aborted;
    if (auto* audit = cluster_->audit()) {
      audit->OnAsyncCheckpointAborted(inst_->id(), cap.ckpt.seq);
    }
    return;
  }
  MaterializeCaptureBuffer(inst_->buffer_state(), &cap);
  CkptSerializer::Job job;
  job.owner = inst_->id();
  job.owner_op = inst_->op();
  job.vm = inst_->vm();
  job.seq = cap.ckpt.seq;
  job.captured_at = cap.ckpt.taken_at;
  job.snapshot = std::move(cap.ckpt);
  ++cluster_->metrics()->async_ckpt_captures;
  cluster_->ckpt_serializer()->Submit(std::move(job));
}

core::StateCheckpoint CheckpointPlane::MakeCheckpoint() {
  CheckpointCapture cap = CaptureFull();
  MaterializeCaptureBuffer(inst_->buffer_state(), &cap);
  return std::move(cap.ckpt);
}

bool CheckpointPlane::CanCheckpointIncrementally() const {
  const ClusterConfig& config = cluster_->config();
  core::Operator* op = inst_->operator_impl();
  if (!config.incremental_checkpoints) return false;
  if (op == nullptr) return false;
  // Stateless operators always qualify: their delta is just the new buffer
  // tuples. Stateful operators must track dirty keys (including deletions).
  if (op->IsStateful() && !op->SupportsIncrementalState()) {
    return false;
  }
  // Periodic full resync bounds staleness after any failed delta apply.
  if (config.full_checkpoint_every > 0 &&
      (ckpt_seq_ + 1) % config.full_checkpoint_every == 0) {
    return false;
  }
  // The stored base must be at this sequence and at the holder Algorithm 1
  // would pick now (upstream repartitioning moves the holder). Find, not
  // Retrieve: this runs before every checkpoint and must not copy the base.
  const BackupStore::Entry* entry = cluster_->backups()->Find(inst_->id());
  if (entry == nullptr) return false;
  if (entry->checkpoint.seq != ckpt_seq_) return false;
  return entry->holder == cluster_->transport()->BackupHolderFor(inst_);
}

core::StateCheckpoint CheckpointPlane::MakeDeltaCheckpoint() {
  CheckpointCapture cap = CaptureDelta();
  MaterializeCaptureBuffer(inst_->buffer_state(), &cap);
  return std::move(cap.ckpt);
}

void CheckpointPlane::OnRestore(const core::StateCheckpoint& checkpoint) {
  ckpt_seq_ = checkpoint.seq;
  shipped_buffer_back_.clear();
  for (const auto& [op_id, tuples] : inst_->buffer_state().buffers()) {
    if (!tuples.empty()) shipped_buffer_back_[op_id] = tuples.back().timestamp;
  }
}

void CheckpointPlane::Reset() {
  ckpt_seq_ = 0;
  shipped_buffer_back_.clear();
}

}  // namespace seep::runtime
