#ifndef SEEP_RUNTIME_BACKUP_STORE_H_
#define SEEP_RUNTIME_BACKUP_STORE_H_

#include <map>
#include <optional>

#include "common/ids.h"
#include "common/result.h"
#include "core/state.h"

namespace seep::runtime {

/// Directory of checkpoint backups: which upstream instance (the paper's
/// backup(o)) holds the latest checkpoint of each operator instance, and the
/// checkpoint itself. Entries whose holder's VM fails become unavailable —
/// the scale-out algorithm then aborts and retries after re-backup, exactly
/// as §4.3 discusses.
class BackupStore {
 public:
  struct Entry {
    InstanceId holder = kInvalidInstance;
    core::StateCheckpoint checkpoint;
  };

  /// store-backup(holder, owner, checkpoint): replaces any previous backup of
  /// `owner` (Algorithm 1 lines 5-6 delete the old holder's copy).
  void Store(InstanceId owner, InstanceId holder,
             core::StateCheckpoint checkpoint) {
    entries_[owner] = Entry{holder, std::move(checkpoint)};
  }

  /// retrieve-backup(backup(o), o). Returns a copy; restore/partition paths
  /// need one anyway. Hot paths that only inspect or mutate the stored entry
  /// should use Find/Mutable to avoid copying the whole checkpoint.
  Result<Entry> Retrieve(InstanceId owner) const {
    auto it = entries_.find(owner);
    if (it == entries_.end()) {
      return Status::NotFound("no backup for instance");
    }
    return it->second;
  }

  /// Zero-copy peek at a stored backup (e.g. the per-checkpoint incremental
  /// eligibility check, which only reads holder and seq). Null if absent.
  const Entry* Find(InstanceId owner) const {
    auto it = entries_.find(owner);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Mutable access for in-place delta application: the holder folds an
  /// incremental checkpoint into its stored base without copying the base
  /// out and back. Null if absent.
  Entry* Mutable(InstanceId owner) {
    auto it = entries_.find(owner);
    return it == entries_.end() ? nullptr : &it->second;
  }

  void Delete(InstanceId owner) { entries_.erase(owner); }

  /// Previous backup holder, or kInvalidInstance (Algorithm 1's backup(o)).
  InstanceId HolderOf(InstanceId owner) const {
    auto it = entries_.find(owner);
    return it == entries_.end() ? kInvalidInstance : it->second.holder;
  }

  bool Has(InstanceId owner) const { return entries_.contains(owner); }

  /// Drops every backup held BY `holder` (its VM failed, taking the stored
  /// checkpoints with it). Returns how many were lost.
  size_t DropHeldBy(InstanceId holder);

 private:
  std::map<InstanceId, Entry> entries_;
};

inline size_t BackupStore::DropHeldBy(InstanceId holder) {
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.holder == holder) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_BACKUP_STORE_H_
