#ifndef SEEP_RUNTIME_BACKUP_STORE_H_
#define SEEP_RUNTIME_BACKUP_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "core/state.h"
#include "store/checkpoint_log.h"

namespace seep::verify {
class InvariantAuditor;
}  // namespace seep::verify

namespace seep::runtime {

/// Which tier(s) a stored backup lives in (ClusterConfig::backup_durability).
enum class BackupDurability : uint8_t {
  /// The paper's model: one in-memory copy at the upstream holder. A
  /// correlated owner+holder failure loses the state. Default, and
  /// byte-identical to the pre-durability behaviour.
  kMemory,
  /// Every backup lives only in the durable checkpoint log (modelling
  /// cluster-persistent storage); nothing is kept in holder memory.
  kDisk,
  /// Both: the in-memory copy serves the fast paths (incremental deltas,
  /// zero-copy restore) and the log covers correlated failures.
  kTiered,
};

/// Directory of checkpoint backups: which upstream instance (the paper's
/// backup(o)) holds the latest checkpoint of each operator instance, and the
/// checkpoint itself. Entries whose holder's VM fails become unavailable —
/// the scale-out algorithm then aborts and retries after re-backup, exactly
/// as §4.3 discusses — unless a durable tier (AttachDurable) also holds the
/// record, in which case Retrieve falls back to the on-disk copy and
/// recovery proceeds without a live holder.
class BackupStore {
 public:
  struct Entry {
    InstanceId holder = kInvalidInstance;
    core::StateCheckpoint checkpoint;
    /// True when Retrieve served this entry from the durable log rather
    /// than holder memory (the recovery plan then skips the holder-alive
    /// checks and ships nothing over the network).
    bool from_disk = false;
  };

  /// A checkpoint already serialized into its wire frame
  /// ([length | crc32c | payload]), as produced by the checkpoint pipeline.
  /// The chunk reassembler hands this over so the durable append reuses the
  /// received bytes instead of re-encoding the decoded checkpoint.
  struct EncodedFrame {
    std::vector<uint8_t> frame;
    uint64_t raw_bytes = 0;  // encoded size before compression
    bool compressed = false;
  };

  /// Wires the durable tier. `log` must outlive the store; `audit` may be
  /// null. `compress` controls encoding on the paths that must serialize
  /// fresh (sync checkpoints, post-delta refreshes).
  void AttachDurable(store::CheckpointLog* log, BackupDurability mode,
                     bool compress, verify::InvariantAuditor* audit);

  BackupDurability durability() const { return mode_; }

  /// kDisk keeps no in-memory entry, so in-place delta application (and
  /// with it incremental checkpointing) degrades to full checkpoints.
  bool SupportsInPlaceDelta() const {
    return mode_ != BackupDurability::kDisk;
  }

  /// store-backup(holder, owner, checkpoint): replaces any previous backup
  /// of `owner` (Algorithm 1 lines 5-6 delete the old holder's copy). With
  /// a durable tier the log append happens before the in-memory replace:
  /// once Store returns OK (and trim acks fire), the record is on disk.
  /// Returns non-OK only when NO tier holds the record — under kDisk a
  /// failed log append stores nothing, and acknowledging it upstream would
  /// trim tuples the backup cannot restore (the unchecked-status rule
  /// exists for exactly this path). Under kMemory/kTiered the in-memory
  /// copy always succeeds, so a durable-append failure only degrades
  /// durability (logged + counted by the caller), never the ack.
  [[nodiscard]] Status Store(InstanceId owner, InstanceId holder,
                             core::StateCheckpoint checkpoint);

  /// Store, reusing an already-serialized frame for the durable append
  /// (the chunked-shipping receive path: no second encode, no second copy).
  [[nodiscard]] Status StoreWithFrame(InstanceId owner, InstanceId holder,
                                      core::StateCheckpoint checkpoint,
                                      EncodedFrame frame);

  /// retrieve-backup(backup(o), o). Returns a copy; restore/partition paths
  /// need one anyway. Hot paths that only inspect or mutate the stored
  /// entry should use Find/Mutable to avoid copying the whole checkpoint.
  /// With a durable tier, a backup missing from memory (holder died, or
  /// kDisk mode) is read back from the log and marked from_disk.
  [[nodiscard]] Result<Entry> Retrieve(InstanceId owner) const;

  /// Zero-copy peek at a stored backup (e.g. the per-checkpoint incremental
  /// eligibility check, which only reads holder and seq). Null if absent
  /// from memory — the durable tier is deliberately not consulted, so under
  /// kDisk incremental checkpointing self-disables.
  const Entry* Find(InstanceId owner) const;

  /// Mutable access for in-place delta application: the holder folds an
  /// incremental checkpoint into its stored base without copying the base
  /// out and back. Null if absent. Callers that mutate the checkpoint must
  /// call RefreshDurable afterwards so the log tier catches up.
  Entry* Mutable(InstanceId owner);

  /// Re-appends `owner`'s current in-memory checkpoint to the durable log
  /// (after an in-place delta apply). No-op (OK) in kMemory mode. A
  /// failure leaves the durable tier one delta behind the (canonical)
  /// in-memory copy; callers surface it as a store failure metric.
  [[nodiscard]] Status RefreshDurable(InstanceId owner);

  /// Deletes the backup everywhere: memory now, and — with a durable tier —
  /// a terminal tombstone record in the log. Reach this through
  /// Cluster::DeleteBackup so the chunk reassembler forgets the owner's
  /// partial streams in the same step.
  void Delete(InstanceId owner);

  /// Previous backup holder, or kInvalidInstance (Algorithm 1's backup(o)).
  /// Consults memory first, then the durable index.
  InstanceId HolderOf(InstanceId owner) const;

  /// True when a backup exists in any tier.
  bool Has(InstanceId owner) const;

  /// Latest stored checkpoint sequence for `owner` across tiers, or
  /// nullopt. The stale-store guard uses this instead of Find so it also
  /// holds in kDisk mode.
  std::optional<uint64_t> LatestSeq(InstanceId owner) const;

  /// Drops every backup held BY `holder` (its VM failed, taking the stored
  /// checkpoints with it). Returns how many in-memory copies were lost.
  /// Durable records survive — that is the point of the log tier.
  size_t DropHeldBy(InstanceId holder);

 private:
  [[nodiscard]] Status AppendDurable(InstanceId owner, InstanceId holder,
                                     const core::StateCheckpoint& checkpoint,
                                     const EncodedFrame* frame);
  [[nodiscard]] Result<Entry> RetrieveDurable(InstanceId owner) const;

  std::map<InstanceId, Entry> entries_;
  store::CheckpointLog* log_ = nullptr;
  BackupDurability mode_ = BackupDurability::kMemory;
  bool compress_ = true;
  verify::InvariantAuditor* audit_ = nullptr;
};

}  // namespace seep::runtime

#endif  // SEEP_RUNTIME_BACKUP_STORE_H_
