#include "workloads/lrb/lrb.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "serde/decoder.h"
#include "serde/encoder.h"

namespace seep::workloads::lrb {

namespace {
constexpr SimTime kMinute = 60 * kMicrosPerSecond;
}  // namespace

double LrbConfig::ScaledRatePerXway(double t_seconds) const {
  const double ramp = ramp_duration_s > 0 ? ramp_duration_s : duration_s;
  const double frac = std::clamp(t_seconds / ramp, 0.0, 1.0);
  const double rate = initial_rate_per_xway +
                      (peak_rate_per_xway - initial_rate_per_xway) *
                          std::pow(frac, ramp_exponent);
  return rate / load_scale;
}

// -------------------------------------------------------------------- source

LrbSource::LrbSource(const LrbConfig& config, uint32_t index, uint32_t count)
    : config_(config),
      index_(index),
      count_(count),
      rng_(HashCombine(config.seed, index)) {}

double LrbSource::TargetRate(SimTime now) const {
  return config_.ScaledRatePerXway(SimToSeconds(now)) *
         static_cast<double>(config_.num_xways) / static_cast<double>(count_);
}

void LrbSource::GenerateBatch(SimTime now, SimTime dt, core::Collector* emit) {
  const double t = SimToSeconds(now);
  // Accident lifecycle per express-way this source covers.
  for (uint32_t xw = index_; xw < config_.num_xways; xw += count_) {
    auto it = accidents_.find(xw);
    if (it != accidents_.end() && it->second.until < now) {
      accidents_.erase(it);
      it = accidents_.end();
    }
    if (it == accidents_.end() &&
        rng_.NextDouble() <
            config_.accident_rate_per_sec * SimToSeconds(dt)) {
      accidents_[xw] = {
          static_cast<int64_t>(rng_.NextBounded(config_.segments_per_xway)),
          now + SecondsToSim(config_.accident_duration_s)};
    }
  }

  const double want = TargetRate(now) * SimToSeconds(dt) + carry_;
  const auto n = static_cast<size_t>(want);
  carry_ = want - static_cast<double>(n);

  // Active vehicle population. Congestion (density, speed) reflects the
  // TRUE unscaled traffic; the *identity space* of sampled vehicles is
  // load-scaled so per-VM state (toll balances) matches the paper's
  // per-VM scale rather than growing 64x with the cost scaling.
  const double scaled_rate = config_.ScaledRatePerXway(t);
  const double true_rate = scaled_rate * config_.load_scale;
  const auto true_vehicles_per_xway = std::max<int64_t>(
      1, static_cast<int64_t>(true_rate * config_.report_interval_s));
  const auto vehicles_per_xway = std::max<int64_t>(
      1, static_cast<int64_t>(scaled_rate * config_.report_interval_s));
  const int64_t period = static_cast<int64_t>(
      t / config_.report_interval_s);

  for (size_t i = 0; i < n; ++i) {
    core::Tuple tuple;
    tuple.event_time = now;

    if (rng_.NextDouble() < config_.balance_query_fraction) {
      const int64_t vid = static_cast<int64_t>(rng_.NextBounded(
          static_cast<uint64_t>(vehicles_per_xway) * config_.num_xways));
      tuple.ints = {kBalanceQuery, vid, ++query_counter_, 0};
      tuple.key = Mix64(static_cast<uint64_t>(vid));
      emit->Emit(std::move(tuple));
      continue;
    }

    // Position report: vehicles advance one segment per reporting period.
    const int64_t local_vid = static_cast<int64_t>(
        rng_.NextBounded(static_cast<uint64_t>(vehicles_per_xway)));
    const auto xway = static_cast<int64_t>(
        index_ + count_ * rng_.NextBounded(std::max<uint64_t>(
                              1, config_.num_xways / count_)));
    const int64_t vid = local_vid * config_.num_xways + xway;
    const int64_t segment =
        (local_vid * 13 + period) % config_.segments_per_xway;

    // Density-dependent speed: congested segments slow down (which is what
    // makes tolls kick in as the ramp grows). The slope is calibrated so
    // segments drop under the LRB toll threshold (LAV < 40 mph) once a
    // segment holds more than ~50 vehicles.
    const double density =
        static_cast<double>(true_vehicles_per_xway) /
        config_.segments_per_xway;
    int64_t speed = std::max<int64_t>(
        5, 90 - static_cast<int64_t>(density) +
               static_cast<int64_t>(rng_.NextBounded(11)) - 5);
    bool stopped = false;
    auto acc = accidents_.find(xway);
    if (acc != accidents_.end() && acc->second.segment == segment) {
      speed = 0;
      stopped = true;
    }
    tuple.ints = {kPositionReport, vid, PackLocation(xway, segment),
                  PackSpeed(speed, /*entering=*/true, stopped)};
    tuple.key = Mix64(static_cast<uint64_t>(PackLocation(xway, segment)));
    emit->Emit(std::move(tuple));
  }
}

// ----------------------------------------------------------------- forwarder

void Forwarder::Process(const core::Tuple& input, core::Collector* out) {
  core::Tuple t = input;
  if (input.ints[0] == kPositionReport) {
    t.key = Mix64(static_cast<uint64_t>(input.ints[2]));  // by segment
    out->EmitTo(0, std::move(t));
  } else if (input.ints[0] == kBalanceQuery) {
    t.key = Mix64(static_cast<uint64_t>(input.ints[1]));  // by vehicle
    out->EmitTo(1, std::move(t));
  }
}

// ----------------------------------------------------------- toll calculator

void TollCalculator::Process(const core::Tuple& input, core::Collector* out) {
  if (input.ints[0] != kPositionReport) return;
  const int64_t vid = input.ints[1];
  const int64_t loc = input.ints[2];
  const int64_t speed = SpeedOf(input.ints[3]);
  const int64_t minute = input.event_time / kMinute;

  SegmentState& seg = segments_[loc];
  auto& [count, speed_sum] = seg.minutes[minute];
  ++count;
  speed_sum += speed;

  if (IsStopped(input.ints[3])) {
    seg.stopped_vehicles.insert(vid);
    if (seg.stopped_vehicles.size() >= 2 && !seg.accident) {
      seg.accident = true;
      core::Tuple alert;
      alert.key = input.key;
      alert.event_time = input.event_time;
      alert.ints = {kAccidentAlert, vid, loc, 0};
      out->EmitTo(0, std::move(alert));
    }
  } else {
    seg.stopped_vehicles.erase(vid);
    if (seg.stopped_vehicles.empty()) seg.accident = false;
  }

  if (IsEntering(input.ints[3])) {
    // LRB toll: previous minute's latest average velocity and count.
    int64_t toll = 0;
    auto prev = seg.minutes.find(minute - 1);
    if (prev != seg.minutes.end() && !seg.accident) {
      const auto& [pcount, pspeed_sum] = prev->second;
      const int64_t lav = pcount > 0 ? pspeed_sum / pcount : 0;
      const auto true_count = static_cast<int64_t>(
          static_cast<double>(pcount) * count_scale_);
      if (lav < 40 && true_count > 50) {
        const int64_t over = true_count - 50;
        toll = 2 * over * over;
      }
    }
    // Toll notification to the driver (the 5 s latency-bound result).
    core::Tuple note;
    note.key = Mix64(static_cast<uint64_t>(vid));
    note.event_time = input.event_time;
    note.ints = {kTollNotification, vid, toll, loc};
    out->EmitTo(0, std::move(note));
    if (toll > 0) {
      core::Tuple charge;
      charge.key = Mix64(static_cast<uint64_t>(vid));
      charge.event_time = input.event_time;
      charge.ints = {kTollCharge, vid, toll, loc};
      out->EmitTo(1, std::move(charge));
    }
  }

  // GC minutes that can no longer influence tolls.
  while (!seg.minutes.empty() && seg.minutes.begin()->first < minute - 5) {
    seg.minutes.erase(seg.minutes.begin());
  }
}

core::ProcessingState TollCalculator::GetProcessingState() const {
  core::ProcessingState state;
  for (const auto& [loc, seg] : segments_) {
    serde::Encoder enc;
    enc.AppendVarintSigned64(loc);
    enc.AppendU8(seg.accident ? 1 : 0);
    enc.AppendVarint64(seg.minutes.size());
    for (const auto& [minute, stats] : seg.minutes) {
      enc.AppendVarintSigned64(minute);
      enc.AppendVarintSigned64(stats.first);
      enc.AppendVarintSigned64(stats.second);
    }
    enc.AppendVarint64(seg.stopped_vehicles.size());
    for (int64_t vid : seg.stopped_vehicles) enc.AppendVarintSigned64(vid);
    state.Add(Mix64(static_cast<uint64_t>(loc)),
              std::string(enc.buffer().begin(), enc.buffer().end()));
  }
  return state;
}

void TollCalculator::SetProcessingState(const core::ProcessingState& state) {
  segments_.clear();
  for (const auto& [key, value] : state.entries()) {
    serde::Decoder dec(value);
    auto loc = dec.ReadVarintSigned64();
    SEEP_CHECK(loc.ok());
    SegmentState& seg = segments_[loc.value()];
    auto accident = dec.ReadU8();
    SEEP_CHECK(accident.ok());
    seg.accident = accident.value() != 0;
    auto n_minutes = dec.ReadVarint64();
    SEEP_CHECK(n_minutes.ok());
    for (uint64_t i = 0; i < n_minutes.value(); ++i) {
      auto minute = dec.ReadVarintSigned64();
      auto count = dec.ReadVarintSigned64();
      auto speed_sum = dec.ReadVarintSigned64();
      SEEP_CHECK(minute.ok() && count.ok() && speed_sum.ok());
      seg.minutes[minute.value()] = {count.value(), speed_sum.value()};
    }
    auto n_stopped = dec.ReadVarint64();
    SEEP_CHECK(n_stopped.ok());
    for (uint64_t i = 0; i < n_stopped.value(); ++i) {
      auto vid = dec.ReadVarintSigned64();
      SEEP_CHECK(vid.ok());
      seg.stopped_vehicles.insert(vid.value());
    }
  }
}

// ----------------------------------------------------------- toll assessment

void TollAssessment::Process(const core::Tuple& input, core::Collector* out) {
  const int64_t vid = input.ints[1];
  if (input.ints[0] == kTollCharge) {
    balances_[vid] += input.ints[2];
    dirty_vehicles_.insert(vid);
  } else if (input.ints[0] == kBalanceQuery) {
    core::Tuple answer;
    answer.key = Mix64(static_cast<uint64_t>(vid));
    answer.event_time = input.event_time;
    auto it = balances_.find(vid);
    answer.ints = {kBalanceAnswer, vid,
                   it == balances_.end() ? 0 : it->second, input.ints[2]};
    out->EmitTo(0, std::move(answer));
  }
}

std::string TollAssessment::EncodeBalance(int64_t vid, int64_t balance) {
  serde::Encoder enc;
  enc.AppendVarintSigned64(vid);
  enc.AppendVarintSigned64(balance);
  return std::string(enc.buffer().begin(), enc.buffer().end());
}

core::ProcessingState TollAssessment::GetProcessingState() const {
  core::ProcessingState state;
  for (const auto& [vid, balance] : balances_) {
    state.Add(Mix64(static_cast<uint64_t>(vid)), EncodeBalance(vid, balance));
  }
  return state;
}

void TollAssessment::SetProcessingState(const core::ProcessingState& state) {
  balances_.clear();
  dirty_vehicles_.clear();
  for (const auto& [key, value] : state.entries()) {
    serde::Decoder dec(value);
    auto vid = dec.ReadVarintSigned64();
    auto balance = dec.ReadVarintSigned64();
    SEEP_CHECK(vid.ok() && balance.ok());
    balances_[vid.value()] = balance.value();
  }
}

core::StateDelta TollAssessment::TakeProcessingStateDelta() {
  core::StateDelta delta;
  for (int64_t vid : dirty_vehicles_) {
    auto it = balances_.find(vid);
    if (it != balances_.end()) {
      delta.updated.Add(Mix64(static_cast<uint64_t>(vid)),
                        EncodeBalance(vid, it->second));
    }
  }
  dirty_vehicles_.clear();
  return delta;
}

// ------------------------------------------------------------ toll collector

void TollCollector::Process(const core::Tuple& input, core::Collector* out) {
  core::Tuple t = input;
  out->EmitTo(0, std::move(t));
}

// ----------------------------------------------------------- balance account

void BalanceAccount::Process(const core::Tuple& input, core::Collector* out) {
  if (input.ints[0] != kBalanceAnswer) return;
  auto& [qid, balance] = latest_[input.ints[1]];
  if (input.ints[3] >= qid) {
    qid = input.ints[3];
    balance = input.ints[2];
  }
  core::Tuple t = input;
  out->EmitTo(0, std::move(t));
}

core::ProcessingState BalanceAccount::GetProcessingState() const {
  core::ProcessingState state;
  for (const auto& [vid, entry] : latest_) {
    serde::Encoder enc;
    enc.AppendVarintSigned64(vid);
    enc.AppendVarintSigned64(entry.first);
    enc.AppendVarintSigned64(entry.second);
    state.Add(Mix64(static_cast<uint64_t>(vid)),
              std::string(enc.buffer().begin(), enc.buffer().end()));
  }
  return state;
}

void BalanceAccount::SetProcessingState(const core::ProcessingState& state) {
  latest_.clear();
  for (const auto& [key, value] : state.entries()) {
    serde::Decoder dec(value);
    auto vid = dec.ReadVarintSigned64();
    auto qid = dec.ReadVarintSigned64();
    auto balance = dec.ReadVarintSigned64();
    SEEP_CHECK(vid.ok() && qid.ok() && balance.ok());
    latest_[vid.value()] = {qid.value(), balance.value()};
  }
}

// ---------------------------------------------------------------------- sink

void LrbSink::Consume(const core::Tuple& tuple, SimTime now) {
  switch (tuple.ints[0]) {
    case kTollNotification:
      ++results_->toll_notifications;
      results_->total_tolls_charged += tuple.ints[2];
      break;
    case kAccidentAlert:
      ++results_->accident_alerts;
      break;
    case kBalanceAnswer:
      ++results_->balance_answers;
      break;
    default:
      break;
  }
}

// --------------------------------------------------------------------- query

LrbQuery BuildLrbQuery(const LrbConfig& config) {
  LrbQuery q;
  q.results = std::make_shared<LrbSink::Results>();

  q.feeder = q.graph.AddSource(
      "data-feeder",
      [config](uint32_t index, uint32_t count) {
        return std::make_unique<LrbSource>(config, index, count);
      },
      config.ScaledCost(config.source_cost_us), config.num_sources);
  q.forwarder = q.graph.AddOperator(
      "forwarder",
      [config]() {
        return std::make_unique<Forwarder>(
            config.ScaledCost(config.forwarder_cost_us));
      },
      /*stateful=*/false);
  q.toll_calculator = q.graph.AddOperator(
      "toll-calculator",
      [config]() {
        return std::make_unique<TollCalculator>(
            config.ScaledCost(config.toll_calc_cost_us), config.load_scale);
      },
      /*stateful=*/true);
  q.toll_assessment = q.graph.AddOperator(
      "toll-assessment",
      [config]() {
        return std::make_unique<TollAssessment>(
            config.ScaledCost(config.assessment_cost_us));
      },
      /*stateful=*/true);
  q.toll_collector = q.graph.AddOperator(
      "toll-collector",
      [config]() {
        return std::make_unique<TollCollector>(
            config.ScaledCost(config.collector_cost_us));
      },
      /*stateful=*/false);
  q.balance_account = q.graph.AddOperator(
      "balance-account",
      [config]() {
        return std::make_unique<BalanceAccount>(
            config.ScaledCost(config.balance_cost_us));
      },
      /*stateful=*/true);
  q.sink = q.graph.AddSink(
      "sink",
      [results = q.results]() { return std::make_unique<LrbSink>(results); },
      config.ScaledCost(config.sink_cost_us));

  SEEP_CHECK(q.graph.Connect(q.feeder, q.forwarder).ok());
  SEEP_CHECK(q.graph.Connect(q.forwarder, q.toll_calculator).ok());  // port 0
  SEEP_CHECK(q.graph.Connect(q.forwarder, q.toll_assessment).ok());  // port 1
  SEEP_CHECK(q.graph.Connect(q.toll_calculator, q.toll_collector).ok());
  SEEP_CHECK(q.graph.Connect(q.toll_calculator, q.toll_assessment).ok());
  SEEP_CHECK(q.graph.Connect(q.toll_assessment, q.balance_account).ok());
  SEEP_CHECK(q.graph.Connect(q.toll_collector, q.sink).ok());
  SEEP_CHECK(q.graph.Connect(q.balance_account, q.sink).ok());
  return q;
}

}  // namespace seep::workloads::lrb
