#ifndef SEEP_WORKLOADS_LRB_LRB_H_
#define SEEP_WORKLOADS_LRB_LRB_H_

#include <map>
#include <memory>
#include <set>

#include "common/rng.h"
#include "core/operator.h"
#include "core/query_graph.h"

namespace seep::workloads::lrb {

/// Tuple type tags carried in ints[0].
enum LrbTupleType : int64_t {
  kPositionReport = 0,
  kBalanceQuery = 2,
  kTollCharge = 10,
  kTollNotification = 11,
  kAccidentAlert = 12,
  kBalanceAnswer = 13,
};

/// Field packing helpers. Position report:
///   ints = [type, vehicle, xway*1000 + segment, speed*4 + entering*2 +
///           stopped*1]; balance query: ints = [type, vehicle, query id, 0].
constexpr int64_t PackLocation(int64_t xway, int64_t segment) {
  return xway * 1000 + segment;
}
constexpr int64_t LocationXway(int64_t loc) { return loc / 1000; }
constexpr int64_t LocationSegment(int64_t loc) { return loc % 1000; }
constexpr int64_t PackSpeed(int64_t speed, bool entering, bool stopped) {
  return speed * 4 + (entering ? 2 : 0) + (stopped ? 1 : 0);
}
constexpr int64_t SpeedOf(int64_t packed) { return packed / 4; }
constexpr bool IsEntering(int64_t packed) { return (packed & 2) != 0; }
constexpr bool IsStopped(int64_t packed) { return (packed & 1) != 0; }

/// Linear Road parameters. The paper (and the LRB spec [5]) ramps the input
/// of one express-way from 15 to ~1700 tuples/s over three hours; we
/// compress the ramp into `duration_s` and replicate it for `num_xways`
/// express-ways, exactly as the paper replicates its precomputed L=1 stream.
/// `load_scale` divides rates and multiplies per-tuple costs by the same
/// factor, preserving VM demand (and hence the scale-out trajectory) while
/// keeping simulated tuple counts tractable.
struct LrbConfig {
  uint32_t num_xways = 4;  // the L factor
  double duration_s = 600;
  /// Length of the rate ramp; 0 means the ramp spans the whole duration
  /// (the paper's Fig. 6 setting). A shorter ramp leaves a steady-state
  /// plateau, useful for latency measurements at a fixed load.
  double ramp_duration_s = 0;
  double initial_rate_per_xway = 34;
  double peak_rate_per_xway = 1714;
  double ramp_exponent = 2.5;
  double load_scale = 1.0;

  uint32_t segments_per_xway = 100;
  double report_interval_s = 30;  // every vehicle reports each 30 s
  double balance_query_fraction = 0.01;
  /// Probability per express-way per second that an accident starts.
  double accident_rate_per_sec = 0.001;
  double accident_duration_s = 90;

  uint32_t num_sources = 1;
  uint64_t seed = 3;

  // Per-tuple CPU costs on the reference core, µs (before load_scale).
  // Calibrated so the toll calculator is the dominant bottleneck, the
  // forwarder second — matching the paper's observed partitioning order —
  // and sources/sinks saturate around 600k tuples/s (serialisation).
  double source_cost_us = 1.67;
  double forwarder_cost_us = 15;
  double toll_calc_cost_us = 45;
  double assessment_cost_us = 30;
  double collector_cost_us = 5;
  double balance_cost_us = 10;
  double sink_cost_us = 1.67;

  /// Effective per-tuple cost after load scaling.
  double ScaledCost(double cost_us) const { return cost_us * load_scale; }
  double ScaledRatePerXway(double t_seconds) const;
};

/// Synthetic express-way traffic: vehicles report every 30 s advancing one
/// segment per period; congestion (density-dependent speed), accidents
/// (stopped vehicles) and balance queries are generated statistically.
class LrbSource : public core::SourceGenerator {
 public:
  LrbSource(const LrbConfig& config, uint32_t index, uint32_t count);

  void GenerateBatch(SimTime now, SimTime dt, core::Collector* emit) override;
  double TargetRate(SimTime now) const override;

 private:
  struct Accident {
    int64_t segment = 0;
    SimTime until = 0;
  };

  LrbConfig config_;
  uint32_t index_;
  uint32_t count_;
  Rng rng_;
  double carry_ = 0;
  int64_t query_counter_ = 0;
  std::map<int64_t, Accident> accidents_;  // per xway
};

/// Stateless router: position reports (keyed by segment) to the toll
/// calculator, balance queries (keyed by vehicle) to toll assessment.
class Forwarder : public core::Operator {
 public:
  explicit Forwarder(double cost_us) : cost_us_(cost_us) {}
  void Process(const core::Tuple& input, core::Collector* out) override;
  double CostMicrosPerTuple() const override { return cost_us_; }

 private:
  double cost_us_;
};

/// Stateful per-segment operator: maintains per-minute vehicle counts and
/// average speeds, detects accidents (>= 2 distinct stopped vehicles), and
/// on segment entry computes the LRB toll 2*(count-50)^2 when the previous
/// minute was congested. Emits toll notifications/accident alerts (port 0,
/// to the collector) and toll charges (port 1, to assessment).
class TollCalculator : public core::Operator {
 public:
  /// `count_scale` compensates load-scaled runs: the observed per-minute
  /// report counts are multiplied by it before applying the LRB congestion
  /// threshold and toll formula, so a 1/64-sampled stream still produces the
  /// tolls of the full-rate stream.
  explicit TollCalculator(double cost_us, double count_scale = 1.0)
      : cost_us_(cost_us), count_scale_(count_scale) {}

  void Process(const core::Tuple& input, core::Collector* out) override;
  bool IsStateful() const override { return true; }
  core::ProcessingState GetProcessingState() const override;
  void SetProcessingState(const core::ProcessingState& state) override;
  double CostMicrosPerTuple() const override { return cost_us_; }

 private:
  struct SegmentState {
    // minute -> (report count, speed sum).
    std::map<int64_t, std::pair<int64_t, int64_t>> minutes;
    std::set<int64_t> stopped_vehicles;
    bool accident = false;
  };

  double cost_us_;
  double count_scale_;
  std::map<int64_t, SegmentState> segments_;  // packed location -> state
};

/// Stateful per-vehicle account: accumulates toll charges (complete-history
/// state — the reason upstream backup cannot recover this operator) and
/// answers balance queries.
class TollAssessment : public core::Operator {
 public:
  explicit TollAssessment(double cost_us) : cost_us_(cost_us) {}

  void Process(const core::Tuple& input, core::Collector* out) override;
  bool IsStateful() const override { return true; }
  core::ProcessingState GetProcessingState() const override;
  void SetProcessingState(const core::ProcessingState& state) override;
  bool SupportsIncrementalState() const override { return true; }
  core::StateDelta TakeProcessingStateDelta() override;
  void ClearStateDelta() override { dirty_vehicles_.clear(); }
  double CostMicrosPerTuple() const override { return cost_us_; }

 private:
  static std::string EncodeBalance(int64_t vid, int64_t balance);

  double cost_us_;
  std::map<int64_t, int64_t> balances_;  // vehicle -> accumulated tolls
  std::set<int64_t> dirty_vehicles_;     // charged since the last checkpoint
};

/// Stateless gatherer of toll notifications and accident alerts.
class TollCollector : public core::Operator {
 public:
  explicit TollCollector(double cost_us) : cost_us_(cost_us) {}
  void Process(const core::Tuple& input, core::Collector* out) override;
  double CostMicrosPerTuple() const override { return cost_us_; }

 private:
  double cost_us_;
};

/// Stateful aggregation of balance answers (per-vehicle latest balance).
class BalanceAccount : public core::Operator {
 public:
  explicit BalanceAccount(double cost_us) : cost_us_(cost_us) {}

  void Process(const core::Tuple& input, core::Collector* out) override;
  bool IsStateful() const override { return true; }
  core::ProcessingState GetProcessingState() const override;
  void SetProcessingState(const core::ProcessingState& state) override;
  double CostMicrosPerTuple() const override { return cost_us_; }

 private:
  double cost_us_;
  std::map<int64_t, std::pair<int64_t, int64_t>> latest_;  // vid -> (qid, bal)
};

/// Tallies result tuples by type for validation.
class LrbSink : public core::SinkConsumer {
 public:
  struct Results {
    uint64_t toll_notifications = 0;
    uint64_t accident_alerts = 0;
    uint64_t balance_answers = 0;
    int64_t total_tolls_charged = 0;
  };

  explicit LrbSink(std::shared_ptr<Results> results)
      : results_(std::move(results)) {}

  void Consume(const core::Tuple& tuple, SimTime now) override;

 private:
  std::shared_ptr<Results> results_;
};

/// The 7-operator LRB query of paper Fig. 5.
struct LrbQuery {
  core::QueryGraph graph;
  OperatorId feeder = 0;
  OperatorId forwarder = 0;
  OperatorId toll_calculator = 0;
  OperatorId toll_assessment = 0;
  OperatorId toll_collector = 0;
  OperatorId balance_account = 0;
  OperatorId sink = 0;
  std::shared_ptr<LrbSink::Results> results;
};

LrbQuery BuildLrbQuery(const LrbConfig& config);

}  // namespace seep::workloads::lrb

#endif  // SEEP_WORKLOADS_LRB_LRB_H_
