#ifndef SEEP_WORKLOADS_WORDCOUNT_WORDCOUNT_H_
#define SEEP_WORKLOADS_WORDCOUNT_WORDCOUNT_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "common/rng.h"
#include "core/operator.h"
#include "core/query_graph.h"

namespace seep::workloads::wordcount {

/// Parameters of the windowed word frequency query (paper §6.2): a stream of
/// ~140-byte sentence fragments through a stateless word splitter into a
/// stateful word counter with a 30 s window.
struct WordCountConfig {
  /// Sentence tuples per second offered by the source.
  double rate_tuples_per_sec = 500;
  /// Optional time-varying rate (tuples/s as a function of seconds); when
  /// set it overrides rate_tuples_per_sec. Used by elasticity experiments
  /// (load waves that trigger scale out and scale in).
  std::function<double(double)> rate_fn;
  /// Distinct words — the state-size knob of Fig. 14 (10^2 / 10^4 / 10^5).
  size_t vocabulary = 1000;
  /// Words per sentence; ~20 seven-byte words ≈ the paper's 140 B fragments.
  size_t words_per_sentence = 20;
  /// Zipf skew of word frequencies.
  double zipf_skew = 0.9;
  /// Tumbling window length.
  SimTime window = SecondsToSim(30);
  /// How many completed windows the counter retains for late/replayed
  /// tuples before discarding.
  int retained_windows = 2;
  /// The counter emits a sampled per-input "probe" update every N inputs so
  /// sinks observe per-tuple processing latency (Fig. 14/15), in addition to
  /// final counts at each window close.
  uint32_t probe_every_n = 10;

  uint64_t seed = 1;
  double source_cost_us = 1.0;
  double splitter_cost_us = 2.0;
  double counter_cost_us = 6.0;
  double sink_cost_us = 0.5;
};

/// Generates random sentences from the configured vocabulary.
class SentenceSource : public core::SourceGenerator {
 public:
  SentenceSource(const WordCountConfig& config, uint32_t index,
                 uint32_t count);

  void GenerateBatch(SimTime now, SimTime dt, core::Collector* emit) override;
  double TargetRate(SimTime now) const override;

  /// The word with this vocabulary index ("w0", "w1", ...).
  static std::string WordAt(size_t index) {
    return "w" + std::to_string(index);
  }

 private:
  WordCountConfig config_;
  uint32_t count_;
  Rng rng_;
  double carry_ = 0;  // fractional tuples carried between ticks
};

/// Stateless tokeniser: one input sentence → one output tuple per word,
/// keyed by the word hash (the running example of paper Fig. 2).
class WordSplitter : public core::Operator {
 public:
  explicit WordSplitter(double cost_us) : cost_us_(cost_us) {}

  void Process(const core::Tuple& input, core::Collector* out) override;
  double CostMicrosPerTuple() const override { return cost_us_; }

 private:
  double cost_us_;
};

/// Stateful windowed frequency counter. Windows are derived from tuple
/// *event time*, so re-processing replayed tuples after recovery rebuilds
/// identical windows. Emits, per closed window and word, a final cumulative
/// count (ints: [window, count, 1]); additionally emits sampled per-input
/// probe updates (ints: [window, count, 0]) for latency measurement.
class WordCounter : public core::Operator {
 public:
  explicit WordCounter(const WordCountConfig& config) : config_(config) {}

  void Process(const core::Tuple& input, core::Collector* out) override;
  bool IsStateful() const override { return true; }
  core::ProcessingState GetProcessingState() const override;
  void SetProcessingState(const core::ProcessingState& state) override;
  void MergeProcessingState(const core::ProcessingState& state) override;
  bool SupportsIncrementalState() const override { return true; }
  core::StateDelta TakeProcessingStateDelta() override;
  void ClearStateDelta() override;
  double CostMicrosPerTuple() const override { return config_.counter_cost_us; }
  SimTime TimerInterval() const override { return config_.window; }
  void OnTimer(SimTime now, core::Collector* out) override;

  /// Number of (word, window) count cells currently held.
  size_t StateCells() const;

 private:
  /// One externalised state entry (all windows of one word).
  std::string EncodeWordEntry(const std::string& word) const;

  WordCountConfig config_;
  uint64_t inputs_since_probe_ = 0;
  // Incremental checkpoint tracking: words whose entry changed / vanished
  // since the last delta or full checkpoint.
  std::set<std::string> dirty_words_;
  std::set<std::string> removed_words_;
  struct Cell {
    int64_t count = 0;
    int64_t emitted = 0;  // count at the last final emission (dirty flag)
  };
  // word -> window id -> cell.
  std::map<std::string, std::map<int64_t, Cell>> counts_;
};

/// Collects final word frequencies. Upserts by (window, word) taking the
/// maximum count, which makes results exact under at-least-once re-emission
/// after recovery (counts only ever grow toward the true value).
class WordFrequencySink : public core::SinkConsumer {
 public:
  struct Results {
    // (window id, word) -> count.
    std::map<std::pair<int64_t, std::string>, int64_t> counts;
    uint64_t tuples_seen = 0;
  };

  explicit WordFrequencySink(std::shared_ptr<Results> results)
      : results_(std::move(results)) {}

  void Consume(const core::Tuple& tuple, SimTime now) override;

 private:
  std::shared_ptr<Results> results_;
};

/// The assembled query with handles to its operators and shared sink
/// results.
struct WordCountQuery {
  core::QueryGraph graph;
  OperatorId source = 0;
  OperatorId splitter = 0;
  OperatorId counter = 0;
  OperatorId sink = 0;
  std::shared_ptr<WordFrequencySink::Results> results;
};

/// Builds source → splitter → counter → sink.
WordCountQuery BuildWordCountQuery(const WordCountConfig& config);

}  // namespace seep::workloads::wordcount

#endif  // SEEP_WORKLOADS_WORDCOUNT_WORDCOUNT_H_
