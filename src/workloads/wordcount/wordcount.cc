#include "workloads/wordcount/wordcount.h"

#include <algorithm>

#include "common/hash.h"
#include "serde/decoder.h"
#include "serde/encoder.h"

namespace seep::workloads::wordcount {

// -------------------------------------------------------------------- source

SentenceSource::SentenceSource(const WordCountConfig& config, uint32_t index,
                               uint32_t count)
    : config_(config),
      count_(count),
      rng_(HashCombine(config.seed, index)) {}

double SentenceSource::TargetRate(SimTime now) const {
  const double total = config_.rate_fn
                           ? config_.rate_fn(SimToSeconds(now))
                           : config_.rate_tuples_per_sec;
  return total / static_cast<double>(count_);
}

void SentenceSource::GenerateBatch(SimTime now, SimTime dt,
                                   core::Collector* emit) {
  const double want = TargetRate(now) * SimToSeconds(dt) + carry_;
  const auto n = static_cast<size_t>(want);
  carry_ = want - static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    core::Tuple t;
    t.event_time = now;
    t.key = rng_.Next();
    std::string sentence;
    sentence.reserve(config_.words_per_sentence * 8);
    for (size_t w = 0; w < config_.words_per_sentence; ++w) {
      if (w > 0) sentence += ' ';
      sentence += WordAt(rng_.NextZipf(config_.vocabulary, config_.zipf_skew));
    }
    t.text = std::move(sentence);
    emit->Emit(std::move(t));
  }
}

// ------------------------------------------------------------------ splitter

void WordSplitter::Process(const core::Tuple& input, core::Collector* out) {
  size_t start = 0;
  const std::string& s = input.text;
  while (start < s.size()) {
    size_t end = s.find(' ', start);
    if (end == std::string::npos) end = s.size();
    if (end > start) {
      core::Tuple word;
      word.event_time = input.event_time;
      word.text = s.substr(start, end - start);
      word.key = HashBytes(word.text);
      out->Emit(std::move(word));
    }
    start = end + 1;
  }
}

// ------------------------------------------------------------------- counter

void WordCounter::Process(const core::Tuple& input, core::Collector* out) {
  const int64_t window =
      input.event_time / std::max<SimTime>(1, config_.window);
  const int64_t count = ++counts_[input.text][window].count;
  dirty_words_.insert(input.text);
  if (config_.probe_every_n > 0 &&
      ++inputs_since_probe_ >= config_.probe_every_n) {
    inputs_since_probe_ = 0;
    core::Tuple probe;
    probe.key = input.key;
    probe.event_time = input.event_time;
    probe.text = input.text;
    probe.ints = {window, count, /*final=*/0, 0};
    out->Emit(std::move(probe));
  }
}

void WordCounter::OnTimer(SimTime now, core::Collector* out) {
  const SimTime window = std::max<SimTime>(1, config_.window);
  const int64_t current = now / window;
  for (auto& [word, windows] : counts_) {
    for (auto it = windows.begin(); it != windows.end();) {
      auto& [win, cell] = *it;
      if (win >= current) {
        ++it;
        continue;  // window still open
      }
      // Emit a final only when the window changed since the last emission
      // (replayed stragglers re-dirty a window and trigger a corrected
      // final on the next timer).
      if (cell.count != cell.emitted) {
        core::Tuple result;
        result.key = HashBytes(word);
        result.event_time = (win + 1) * window;
        result.text = word;
        result.ints = {win, cell.count, /*final=*/1, 0};
        result.latency_sample = false;  // periodic output, not per-tuple path
        out->Emit(std::move(result));
        cell.emitted = cell.count;
      }
      // Retain recently closed windows so late tuples re-accumulate.
      if (win < current - config_.retained_windows) {
        dirty_words_.insert(word);
        it = windows.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::erase_if(counts_, [this](const auto& kv) {
    if (!kv.second.empty()) return false;
    removed_words_.insert(kv.first);
    dirty_words_.erase(kv.first);
    return true;
  });
}

std::string WordCounter::EncodeWordEntry(const std::string& word) const {
  const auto& windows = counts_.at(word);
  serde::Encoder enc;
  enc.AppendString(word);
  enc.AppendVarint64(windows.size());
  for (const auto& [win, cell] : windows) {
    enc.AppendVarintSigned64(win);
    enc.AppendVarintSigned64(cell.count);
  }
  return std::string(enc.buffer().begin(), enc.buffer().end());
}

core::ProcessingState WordCounter::GetProcessingState() const {
  core::ProcessingState state;
  for (const auto& [word, windows] : counts_) {
    state.Add(HashBytes(word), EncodeWordEntry(word));
  }
  return state;
}

core::StateDelta WordCounter::TakeProcessingStateDelta() {
  core::StateDelta delta;
  for (const std::string& word : dirty_words_) {
    if (counts_.contains(word)) {
      delta.updated.Add(HashBytes(word), EncodeWordEntry(word));
    }
  }
  for (const std::string& word : removed_words_) {
    delta.deleted.push_back(HashBytes(word));
  }
  ClearStateDelta();
  return delta;
}

void WordCounter::ClearStateDelta() {
  dirty_words_.clear();
  removed_words_.clear();
}

void WordCounter::SetProcessingState(const core::ProcessingState& state) {
  counts_.clear();
  ClearStateDelta();
  MergeProcessingState(state);
  // Restored state equals the checkpoint it came from: nothing is dirty
  // relative to that base.
  ClearStateDelta();
}

void WordCounter::MergeProcessingState(const core::ProcessingState& state) {
  for (const auto& [key, value] : state.entries()) {
    serde::Decoder dec(value);
    auto word = dec.ReadString();
    SEEP_CHECK(word.ok());
    auto n = dec.ReadVarint64();
    SEEP_CHECK(n.ok());
    auto& windows = counts_[word.value()];
    dirty_words_.insert(word.value());
    for (uint64_t i = 0; i < n.value(); ++i) {
      auto win = dec.ReadVarintSigned64();
      auto count = dec.ReadVarintSigned64();
      SEEP_CHECK(win.ok() && count.ok());
      // Restored/merged state counts as un-emitted so the next timer emits
      // (or re-emits) the final; the sink's max-merge keeps this idempotent.
      windows[win.value()].count += count.value();
    }
  }
}

size_t WordCounter::StateCells() const {
  size_t n = 0;
  for (const auto& [word, windows] : counts_) n += windows.size();
  return n;
}

// ---------------------------------------------------------------------- sink

void WordFrequencySink::Consume(const core::Tuple& tuple, SimTime now) {
  ++results_->tuples_seen;
  auto& cell = results_->counts[{tuple.ints[0], tuple.text}];
  cell = std::max(cell, tuple.ints[1]);
}

// --------------------------------------------------------------------- query

WordCountQuery BuildWordCountQuery(const WordCountConfig& config) {
  WordCountQuery q;
  q.results = std::make_shared<WordFrequencySink::Results>();

  q.source = q.graph.AddSource(
      "sentence-source",
      [config](uint32_t index, uint32_t count) {
        return std::make_unique<SentenceSource>(config, index, count);
      },
      config.source_cost_us);
  q.splitter = q.graph.AddOperator(
      "word-splitter",
      [config]() { return std::make_unique<WordSplitter>(
          config.splitter_cost_us); },
      /*stateful=*/false);
  q.counter = q.graph.AddOperator(
      "word-counter",
      [config]() { return std::make_unique<WordCounter>(config); },
      /*stateful=*/true);
  q.sink = q.graph.AddSink(
      "sink",
      [results = q.results]() {
        return std::make_unique<WordFrequencySink>(results);
      },
      config.sink_cost_us);

  SEEP_CHECK(q.graph.Connect(q.source, q.splitter).ok());
  SEEP_CHECK(q.graph.Connect(q.splitter, q.counter).ok());
  SEEP_CHECK(q.graph.Connect(q.counter, q.sink).ok());
  return q;
}

}  // namespace seep::workloads::wordcount
