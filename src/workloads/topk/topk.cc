#include "workloads/topk/topk.h"

#include <algorithm>

#include "common/hash.h"
#include "serde/decoder.h"
#include "serde/encoder.h"

namespace seep::workloads::topk {

// -------------------------------------------------------------------- source

PageViewSource::PageViewSource(const TopKConfig& config, uint32_t index,
                               uint32_t count)
    : config_(config),
      count_(count),
      rng_(HashCombine(config.seed, index)) {}

double PageViewSource::TargetRate(SimTime now) const {
  return config_.total_rate_tuples_per_sec / static_cast<double>(count_);
}

void PageViewSource::GenerateBatch(SimTime now, SimTime dt,
                                   core::Collector* emit) {
  const double want = TargetRate(now) * SimToSeconds(dt) + carry_;
  const auto n = static_cast<size_t>(want);
  carry_ = want - static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const auto lang = static_cast<int64_t>(
        rng_.NextZipf(config_.num_languages, config_.zipf_skew));
    core::Tuple t;
    t.event_time = now;
    t.key = Mix64(static_cast<uint64_t>(lang));
    t.ints = {lang, static_cast<int64_t>(rng_.Next() & 0xFFFF),
              static_cast<int64_t>(rng_.Next() & 0xFFFF), 0};
    // Junk payload the mapper strips: page title + user agent stand-ins.
    t.text = "page/" + std::to_string(rng_.NextBounded(100000)) +
             "?agent=browser";
    emit->Emit(std::move(t));
  }
}

// ----------------------------------------------------------------------- map

void MapProject::Process(const core::Tuple& input, core::Collector* out) {
  core::Tuple projected;
  projected.key = input.key;
  projected.event_time = input.event_time;
  projected.ints = {input.ints[0], 0, 0, 0};
  out->Emit(std::move(projected));
}

// -------------------------------------------------------------------- reduce

void TopKReducer::Process(const core::Tuple& input, core::Collector* out) {
  const int64_t window =
      input.event_time / std::max<SimTime>(1, config_.window);
  ++counts_[input.ints[0]][window].count;
  dirty_languages_.insert(input.ints[0]);
}

void TopKReducer::OnTimer(SimTime now, core::Collector* out) {
  const SimTime window = std::max<SimTime>(1, config_.window);
  const int64_t current = now / window;
  for (auto& [lang, windows] : counts_) {
    for (auto it = windows.begin(); it != windows.end();) {
      auto& [win, cell] = *it;
      if (win >= current) {
        ++it;
        continue;
      }
      if (cell.count != cell.emitted) {
        core::Tuple partial;
        partial.key = Mix64(static_cast<uint64_t>(lang));
        partial.event_time = (win + 1) * window;
        partial.ints = {win, lang, cell.count, 0};
        partial.latency_sample = false;  // periodic output
        out->Emit(std::move(partial));
        cell.emitted = cell.count;
      }
      if (win < current - 2) {
        dirty_languages_.insert(lang);
        it = windows.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::erase_if(counts_, [this](const auto& kv) {
    if (!kv.second.empty()) return false;
    removed_languages_.insert(kv.first);
    dirty_languages_.erase(kv.first);
    return true;
  });
}

std::string TopKReducer::EncodeLanguageEntry(int64_t lang) const {
  const auto& windows = counts_.at(lang);
  serde::Encoder enc;
  enc.AppendVarintSigned64(lang);
  enc.AppendVarint64(windows.size());
  for (const auto& [win, cell] : windows) {
    enc.AppendVarintSigned64(win);
    enc.AppendVarintSigned64(cell.count);
  }
  return std::string(enc.buffer().begin(), enc.buffer().end());
}

core::ProcessingState TopKReducer::GetProcessingState() const {
  core::ProcessingState state;
  for (const auto& [lang, windows] : counts_) {
    state.Add(Mix64(static_cast<uint64_t>(lang)), EncodeLanguageEntry(lang));
  }
  return state;
}

core::StateDelta TopKReducer::TakeProcessingStateDelta() {
  core::StateDelta delta;
  for (int64_t lang : dirty_languages_) {
    if (counts_.contains(lang)) {
      delta.updated.Add(Mix64(static_cast<uint64_t>(lang)),
                        EncodeLanguageEntry(lang));
    }
  }
  for (int64_t lang : removed_languages_) {
    delta.deleted.push_back(Mix64(static_cast<uint64_t>(lang)));
  }
  ClearStateDelta();
  return delta;
}

void TopKReducer::ClearStateDelta() {
  dirty_languages_.clear();
  removed_languages_.clear();
}

void TopKReducer::SetProcessingState(const core::ProcessingState& state) {
  counts_.clear();
  MergeProcessingState(state);
  ClearStateDelta();
}

void TopKReducer::MergeProcessingState(const core::ProcessingState& state) {
  for (const auto& [key, value] : state.entries()) {
    serde::Decoder dec(value);
    auto lang = dec.ReadVarintSigned64();
    SEEP_CHECK(lang.ok());
    auto n = dec.ReadVarint64();
    SEEP_CHECK(n.ok());
    auto& windows = counts_[lang.value()];
    for (uint64_t i = 0; i < n.value(); ++i) {
      auto win = dec.ReadVarintSigned64();
      auto count = dec.ReadVarintSigned64();
      SEEP_CHECK(win.ok() && count.ok());
      windows[win.value()].count += count.value();
    }
  }
}

// ---------------------------------------------------------------------- sink

void TopKSink::Consume(const core::Tuple& tuple, SimTime now) {
  ++results_->tuples_seen;
  auto& cell = results_->counts[tuple.ints[0]][tuple.ints[1]];
  // Partials are cumulative per (window, language, partition); since one
  // partition owns a language at a time, max-merge converges to the truth
  // under re-emission.
  cell = std::max(cell, tuple.ints[2]);
}

std::vector<std::pair<int64_t, int64_t>> TopKSink::Results::TopK(
    int64_t window, size_t k) const {
  std::vector<std::pair<int64_t, int64_t>> ranked;  // (language, count)
  auto it = counts.find(window);
  if (it == counts.end()) return ranked;
  for (const auto& [lang, count] : it->second) ranked.emplace_back(lang, count);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

// --------------------------------------------------------------------- query

TopKQuery BuildTopKQuery(const TopKConfig& config) {
  TopKQuery q;
  q.results = std::make_shared<TopKSink::Results>();

  q.source = q.graph.AddSource(
      "pageview-source",
      [config](uint32_t index, uint32_t count) {
        return std::make_unique<PageViewSource>(config, index, count);
      },
      config.source_cost_us, config.num_sources);
  q.map = q.graph.AddOperator(
      "map",
      [config]() { return std::make_unique<MapProject>(config.map_cost_us); },
      /*stateful=*/false);
  q.reduce = q.graph.AddOperator(
      "reduce",
      [config]() { return std::make_unique<TopKReducer>(config); },
      /*stateful=*/true);
  q.sink = q.graph.AddSink(
      "sink",
      [results = q.results]() { return std::make_unique<TopKSink>(results); },
      config.sink_cost_us);

  SEEP_CHECK(q.graph.Connect(q.source, q.map).ok());
  SEEP_CHECK(q.graph.Connect(q.map, q.reduce).ok());
  SEEP_CHECK(q.graph.Connect(q.reduce, q.sink).ok());
  return q;
}

}  // namespace seep::workloads::topk
