#ifndef SEEP_WORKLOADS_TOPK_TOPK_H_
#define SEEP_WORKLOADS_TOPK_TOPK_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/operator.h"
#include "core/query_graph.h"

namespace seep::workloads::topk {

/// Parameters of the map/reduce-style top-k query over a synthetic
/// Wikipedia page-view trace (paper §6.1, open-loop workload): every 30 s,
/// rank the most visited language editions.
struct TopKConfig {
  /// Total offered rate across all sources, tuples/second. The paper's run
  /// settles at 550,000 t/s; scaled runs use proportionally smaller rates.
  double total_rate_tuples_per_sec = 20000;
  /// Number of parallel data sources (paper: 18).
  uint32_t num_sources = 18;
  /// Number of language editions and the Zipf skew of their popularity.
  size_t num_languages = 300;
  double zipf_skew = 1.0;
  /// Ranking window and cut-off.
  SimTime window = SecondsToSim(30);
  size_t k = 10;

  uint64_t seed = 2;
  double source_cost_us = 1.0;
  double map_cost_us = 2.0;
  double reduce_cost_us = 5.0;
  double sink_cost_us = 0.5;
};

/// Emits raw page-view records: language id plus junk fields the mapper
/// strips (the paper's map "removes unnecessary fields from tuples").
class PageViewSource : public core::SourceGenerator {
 public:
  PageViewSource(const TopKConfig& config, uint32_t index, uint32_t count);

  void GenerateBatch(SimTime now, SimTime dt, core::Collector* emit) override;
  double TargetRate(SimTime now) const override;

 private:
  TopKConfig config_;
  uint32_t count_;
  Rng rng_;
  double carry_ = 0;
};

/// Stateless projection: drops the junk payload, keeps the language key.
class MapProject : public core::Operator {
 public:
  explicit MapProject(double cost_us) : cost_us_(cost_us) {}
  void Process(const core::Tuple& input, core::Collector* out) override;
  double CostMicrosPerTuple() const override { return cost_us_; }

 private:
  double cost_us_;
};

/// Stateful reducer: per-language visit counts per event-time window;
/// emits (window, language, count) partials at each window close, which the
/// sink merges into the final top-k ranking (paper: "when the reducer
/// scales out, we use the sink to aggregate the partial results").
class TopKReducer : public core::Operator {
 public:
  explicit TopKReducer(const TopKConfig& config) : config_(config) {}

  void Process(const core::Tuple& input, core::Collector* out) override;
  bool IsStateful() const override { return true; }
  core::ProcessingState GetProcessingState() const override;
  void SetProcessingState(const core::ProcessingState& state) override;
  void MergeProcessingState(const core::ProcessingState& state) override;
  bool SupportsIncrementalState() const override { return true; }
  core::StateDelta TakeProcessingStateDelta() override;
  void ClearStateDelta() override;
  double CostMicrosPerTuple() const override { return config_.reduce_cost_us; }
  SimTime TimerInterval() const override { return config_.window; }
  void OnTimer(SimTime now, core::Collector* out) override;

 private:
  std::string EncodeLanguageEntry(int64_t lang) const;

  TopKConfig config_;
  std::set<int64_t> dirty_languages_;
  std::set<int64_t> removed_languages_;
  struct Cell {
    int64_t count = 0;
    int64_t emitted = 0;  // count at the last partial emission
  };
  // language id -> window id -> cell.
  std::map<int64_t, std::map<int64_t, Cell>> counts_;
};

/// Merges partial counts and materialises the per-window top-k ranking.
class TopKSink : public core::SinkConsumer {
 public:
  struct Results {
    // window id -> language id -> count (max-merged partials).
    std::map<int64_t, std::map<int64_t, int64_t>> counts;
    uint64_t tuples_seen = 0;

    /// Top-k languages of a window, most visited first.
    std::vector<std::pair<int64_t, int64_t>> TopK(int64_t window,
                                                  size_t k) const;
  };

  explicit TopKSink(std::shared_ptr<Results> results)
      : results_(std::move(results)) {}

  void Consume(const core::Tuple& tuple, SimTime now) override;

 private:
  std::shared_ptr<Results> results_;
};

struct TopKQuery {
  core::QueryGraph graph;
  OperatorId source = 0;
  OperatorId map = 0;
  OperatorId reduce = 0;
  OperatorId sink = 0;
  std::shared_ptr<TopKSink::Results> results;
};

/// Builds sources[N] → map → reduce → sink.
TopKQuery BuildTopKQuery(const TopKConfig& config);

}  // namespace seep::workloads::topk

#endif  // SEEP_WORKLOADS_TOPK_TOPK_H_
