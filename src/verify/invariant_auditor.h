#ifndef SEEP_VERIFY_INVARIANT_AUDITOR_H_
#define SEEP_VERIFY_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "core/key_range.h"
#include "core/state.h"

namespace seep::verify {

/// Audit levels. Level 1 checks are per-event (trims, routing installs,
/// checkpoint stores, fences) and cheap enough for figure benches; level 2
/// adds per-tuple and whole-table sweeps (sink exactly-once stamp sets, full
/// routing-table re-verification) whose memory and CPU grow with the run.
enum AuditLevel : int {
  kAuditOff = 0,
  kAuditCheap = 1,
  kAuditExpensive = 2,
};

/// The audit level a fresh ClusterConfig defaults to: the SEEP_AUDIT
/// environment variable ("0"/"1"/"2") when set, else the compile-time
/// default baked in by the SEEP_AUDIT CMake option (level 1), else off.
int DefaultAuditLevel();

/// One detected protocol violation. `invariant` is a stable, documented name
/// (see DESIGN.md §7) that mutation tests and postmortems key on.
struct Violation {
  std::string invariant;
  std::string detail;
};

/// Observes the runtime through the component interfaces (TrimTracker,
/// CheckpointPlane via Transport, EmissionRouter via the sink path,
/// FenceRegistry, the routing installs of control/) and asserts the SEEP
/// protocol invariants of Algorithms 1-3. The auditor keeps its own mirror
/// of the protocol state it audits — acknowledgement and sent positions,
/// fence send counts, stored checkpoint sequences — so a corrupted component
/// table disagrees with the mirror and trips the check instead of silently
/// re-deriving the corruption.
///
/// By default a violation prints `SEEP_AUDIT violation <name>: <detail>` and
/// aborts; tests install a collecting handler instead. All hooks are no-ops
/// at levels below the check's level, and call sites guard on a null auditor
/// pointer, so an audit-off build pays one branch per hook.
class InvariantAuditor {
 public:
  using Handler = std::function<void(const Violation&)>;

  explicit InvariantAuditor(int level);

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  int level() const { return level_; }

  /// Replaces the abort-on-violation default (tests collect instead).
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  /// Violations seen so far (only meaningful with a non-aborting handler).
  uint64_t violations() const { return violations_; }

  // ------------------------------------------------ Algorithm 1: trimming

  /// Upstream instance `at` sent a tuple with `timestamp` to `dest` of
  /// downstream logical operator `down_op` (TrimTracker::NoteSent).
  void OnNoteSent(InstanceId at, OperatorId down_op, InstanceId dest,
                  int64_t timestamp);

  /// Downstream instance `down_inst` acknowledged checkpoint coverage
  /// through `position` (TrimTracker::OnTrimAck).
  void OnTrimAck(InstanceId at, OperatorId down_op, InstanceId down_inst,
                 int64_t position);

  /// A coordinator seeded `down_inst`'s acknowledgement from a restored
  /// checkpoint (TrimTracker::SeedAck). Unlike acks, seeds may move the
  /// position backwards — but only for an instance id never seen before
  /// (instance ids are not reused); re-seeding a known instance backwards
  /// would un-cover already-trimmed tuples.
  void OnSeedAck(InstanceId at, OperatorId down_op, InstanceId down_inst,
                 int64_t position);

  /// Instance `at` is about to trim its output buffer for `down_op` through
  /// `up_to`, with `current` the downstream membership consulted. Asserts
  /// trim-monotonicity (per (at, down_op) the bound never regresses) and
  /// checkpoint-covers-trim (`up_to` does not exceed the bound the mirror
  /// derives from acknowledged checkpoint positions; Algorithm 1 line 4).
  void OnTrim(InstanceId at, OperatorId down_op, int64_t up_to,
              const std::vector<InstanceId>& current);

  /// A checkpoint of `owner` (hosted on `owner_vm`) seq `seq` was stored at
  /// `holder` (hosted on `holder_vm`). Asserts backup-placement (the backup
  /// lives on a different instance AND a different VM than the state it
  /// protects — otherwise one VM failure loses both copies) and
  /// checkpoint-seq-monotonicity (stored sequence numbers strictly increase
  /// per owner, so a stale checkpoint can never supersede a fresher one).
  void OnCheckpointStored(InstanceId owner, VmId owner_vm, InstanceId holder,
                          VmId holder_vm, uint64_t seq);

  // --------------------------------------- asynchronous checkpoint pipeline

  /// One chunk of `owner`'s serialized checkpoint frame seq `seq` arrived at
  /// `holder`. Asserts chunk-reassembly: per (owner, seq, holder) stream the
  /// indices arrive in order 0..count-1, every chunk declares the same
  /// count/frame_bytes, and the chunk bytes sum to exactly frame_bytes at
  /// the last chunk — so a reassembled frame can never be a silent splice of
  /// two different checkpoints.
  void OnCheckpointChunk(InstanceId owner, InstanceId holder, uint64_t seq,
                         uint32_t index, uint32_t count, uint64_t chunk_bytes,
                         uint64_t frame_bytes);

  /// Checkpointing of `instance` was suspended/resumed by a coordinator.
  /// While suspended, OnCheckpointStored for that owner trips
  /// no-store-while-suspended: the coordinator chose an older backup as its
  /// restore point, and a fresher store's trim acks would drop tuples that
  /// restore point still needs replayed.
  void OnCheckpointsSuspended(InstanceId instance);
  void OnCheckpointsResumed(InstanceId instance);

  /// An in-flight asynchronous checkpoint of `owner` seq `seq` was aborted
  /// (owner died, stopped, or was suspended between pipeline stages). The
  /// aborted sequence must never be stored later — OnCheckpointStored trips
  /// aborted-checkpoint-stored if it is.
  void OnAsyncCheckpointAborted(InstanceId owner, uint64_t seq);

  // ----------------------------------------- Algorithm 2: partitioned state

  /// Routing for `down_op` was (re)installed. Asserts route-tiling: the
  /// routes exactly tile the full key space — sorted by range, no gap, no
  /// overlap, first lo == 0, last hi == UINT64_MAX — so every key routes to
  /// exactly one partition. At level 2 the whole remembered table is swept,
  /// not just the changed operator.
  void OnRoutesInstalled(OperatorId down_op,
                         const std::vector<core::RoutingState::Route>& routes);

  /// A checkpoint was partitioned into `parts` (Algorithm 2). Asserts
  /// partition-completeness: the partition ranges exactly tile the base
  /// range, every processing-state entry lands in exactly the partition
  /// whose range contains its key (none lost, none duplicated), and the
  /// buffered tuples are conserved across the split.
  void OnPartitioned(const core::StateCheckpoint& base,
                     const std::vector<core::StateCheckpoint>& parts);

  // ------------------------------------------- Algorithm 3: replay + fences

  /// Instance `from` replayed `tuples` buffered tuples to `to`
  /// (OperatorInstance::ReplayBuffer, before the fence is sent).
  void OnReplaySent(InstanceId from, InstanceId to, uint64_t tuples);

  /// Instance `from` sent fence `fence_id` to `to` on the same FIFO link as
  /// the replay batches. Snapshots the cumulative replay-sent count of the
  /// link; the fence "carries" that expectation.
  void OnFenceSent(uint64_t fence_id, InstanceId from, InstanceId to);

  /// A replay batch of `tuples` tuples from `from` was processed at `to`.
  void OnReplayProcessed(InstanceId from, InstanceId to, uint64_t tuples);

  /// Fence `fence_id` from `from` was processed at `to`. Asserts
  /// fence-before-replay: every replay tuple sent on the (from, to) link
  /// before the fence must have been processed at `to` already — a fence
  /// overtaking replayed tuples would complete recovery before the replay
  /// drained (Algorithm 3's drain proof would be a lie).
  void OnFenceProcessed(uint64_t fence_id, InstanceId from, InstanceId to);

  // ------------------------------------------- reconfiguration plane

  /// Reconfiguration plan `plan_id` (scale out/in, recovery) started for
  /// operator `op`. Asserts one-plan-per-operator: two concurrent plans
  /// reconfiguring the same operator would race on its routing and
  /// membership. Also snapshots the operator's routing mirror for the
  /// routes-restored-on-abort check.
  void OnPlanStarted(uint64_t plan_id, OperatorId op);

  /// The plan took ownership of VM `vm` (pool grant).
  void OnPlanVmAcquired(uint64_t plan_id, VmId vm);

  /// The plan handed VM `vm` off — consumed by a deployment or released
  /// back to the provider. Every acquired VM must be disposed before the
  /// plan finishes (no-leaked-vm).
  void OnPlanVmDisposed(uint64_t plan_id, VmId vm);

  /// The plan froze `instance`'s checkpoint schedule. On an aborted plan,
  /// every surviving frozen instance must have been resumed by the time the
  /// plan finishes (checkpoints-resumed-after-abort) — a partition left
  /// suspended would never back up again.
  void OnPlanSuspendedCheckpoints(uint64_t plan_id, InstanceId instance);

  /// `instance` crash-stopped (its VM died). Dead instances are exempt from
  /// the resume-after-abort check: they cannot checkpoint and their
  /// replacements start fresh schedules.
  void OnInstanceDead(InstanceId instance);

  /// The plan finished. `aborted` distinguishes commit from
  /// compensated-abort. Asserts no-leaked-vm (always) and, on abort,
  /// checkpoints-resumed-after-abort plus routes-restored-on-abort (an
  /// aborted plan must leave the operator's routing exactly as it found
  /// it).
  void OnPlanFinished(uint64_t plan_id, OperatorId op, bool aborted);

  // ------------------------------------------------ durable checkpoint log

  /// The cluster runs a durable backup tier (kDisk/kTiered). While set,
  /// OnCheckpointStored additionally asserts durable-log-covers-trim: the
  /// store that is about to trigger trim acks was preceded by a durable
  /// append of the same or newer sequence, so tuples are never trimmed on
  /// the strength of a checkpoint that only exists in volatile memory.
  void SetDurableMode(bool durable);

  /// A checkpoint record for `owner` seq `seq` was appended to the durable
  /// log. Asserts durable monotonicity (appends never regress per owner)
  /// and no-append-after-tombstone.
  void OnDurableAppend(InstanceId owner, uint64_t seq);

  /// A tombstone record for `owner` was appended (terminal delete).
  void OnDurableTombstone(InstanceId owner);

  /// The log's index view of `owner` after a mutation. Asserts
  /// index-matches-log: the index agrees with the mirror replayed from the
  /// append/tombstone stream — present exactly when appended and not
  /// tombstoned, at the latest appended sequence.
  void OnDurableIndexState(InstanceId owner, bool present, uint64_t seq);

  /// A disk-level divergence found by the log's own read-back checks
  /// (SpotCheck/VerifyIndex at level 2); reported under index-matches-log.
  void OnDurableIndexDivergence(const std::string& detail);

  // ----------------------------------------------- recovery: exactly-once

  /// A tuple stamped (origin, timestamp) survived duplicate filtering at a
  /// sink instance of logical operator `sink_op`. Level 2 only: asserts
  /// sink-exactly-once — no stamp is delivered twice across the whole
  /// lifetime of the sink operator, including across instance replacement
  /// and parallel recovery (the end-to-end guarantee of §3.2 recovery).
  void OnSinkDelivered(OperatorId sink_op, core::OriginId origin,
                       int64_t timestamp);

 private:
  void Fail(const std::string& invariant, std::string detail);

  /// Recomputes the admissible trim bound for (at, down_op) from the
  /// mirrored ack/sent tables — the same formula as TrimTracker::MaybeTrim,
  /// over independently accumulated inputs.
  int64_t AllowedTrimBound(InstanceId at, OperatorId down_op,
                           const std::vector<InstanceId>& current) const;

  void CheckTiling(OperatorId down_op,
                   const std::vector<core::RoutingState::Route>& routes);

  int level_;
  Handler handler_;
  uint64_t violations_ = 0;

  using PeerKey = std::pair<InstanceId, OperatorId>;   // (at, down_op)
  using LinkKey = std::pair<InstanceId, InstanceId>;   // (from, to)

  // Algorithm 1 mirrors.
  std::map<PeerKey, std::map<InstanceId, int64_t>> acks_;
  std::map<PeerKey, std::map<InstanceId, int64_t>> sent_;
  std::map<PeerKey, int64_t> last_trim_;
  std::map<InstanceId, uint64_t> last_stored_seq_;

  // Checkpoint-pipeline mirrors.
  struct ChunkStream {
    uint32_t next_index = 0;
    uint32_t count = 0;
    uint64_t frame_bytes = 0;
    uint64_t received = 0;
  };
  // (owner, seq, holder) → progress of the chunk stream.
  std::map<std::tuple<InstanceId, uint64_t, InstanceId>, ChunkStream>
      chunk_streams_;
  std::set<InstanceId> suspended_;
  std::set<std::pair<InstanceId, uint64_t>> aborted_ckpts_;

  // Algorithm 2 mirror (for the level-2 whole-table sweep).
  std::map<OperatorId, std::vector<core::RoutingState::Route>> routes_;

  // Reconfiguration-plane mirrors.
  struct PlanMirror {
    OperatorId op = 0;
    std::set<VmId> outstanding_vms;
    std::set<InstanceId> suspended;
    bool had_routes = false;
    std::vector<core::RoutingState::Route> routes_at_start;
  };
  std::map<uint64_t, PlanMirror> plans_;
  std::map<OperatorId, uint64_t> active_plan_of_op_;
  std::set<InstanceId> dead_instances_;

  // Algorithm 3 mirrors.
  std::map<LinkKey, uint64_t> replay_sent_;
  std::map<LinkKey, uint64_t> replay_processed_;
  struct FenceSnapshot {
    uint64_t replay_sent_at_fence = 0;
  };
  std::map<std::pair<uint64_t, LinkKey>, FenceSnapshot> fence_snapshots_;

  // Durable-log mirrors.
  bool durable_ = false;
  std::map<InstanceId, uint64_t> durable_seq_;
  std::set<InstanceId> durable_tombstoned_;

  // Exactly-once stamp sets, per (sink_op, origin). Level 2 only.
  std::map<std::pair<OperatorId, core::OriginId>, std::unordered_set<int64_t>>
      sink_stamps_;
};

}  // namespace seep::verify

#endif  // SEEP_VERIFY_INVARIANT_AUDITOR_H_
