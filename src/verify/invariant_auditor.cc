#include "verify/invariant_auditor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace seep::verify {

int DefaultAuditLevel() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup, before
  // any worker thread exists; nothing in the process calls setenv.
  if (const char* env = std::getenv("SEEP_AUDIT"); env != nullptr) {
    const int level = std::atoi(env);
    return std::clamp(level, 0, 2);
  }
#ifdef SEEP_AUDIT_DEFAULT_LEVEL
  return SEEP_AUDIT_DEFAULT_LEVEL;
#else
  return kAuditOff;
#endif
}

InvariantAuditor::InvariantAuditor(int level) : level_(level) {
  handler_ = [](const Violation& v) {
    std::fprintf(stderr, "SEEP_AUDIT violation %s: %s\n",
                 v.invariant.c_str(), v.detail.c_str());
    std::abort();
  };
}

void InvariantAuditor::Fail(const std::string& invariant,
                            std::string detail) {
  ++violations_;
  handler_(Violation{invariant, std::move(detail)});
}

// --------------------------------------------------- Algorithm 1: trimming

void InvariantAuditor::OnNoteSent(InstanceId at, OperatorId down_op,
                                  InstanceId dest, int64_t timestamp) {
  if (level_ < kAuditCheap) return;
  auto [it, inserted] =
      sent_[{at, down_op}].try_emplace(dest, timestamp);
  if (!inserted) it->second = std::max(it->second, timestamp);
}

void InvariantAuditor::OnTrimAck(InstanceId at, OperatorId down_op,
                                 InstanceId down_inst, int64_t position) {
  if (level_ < kAuditCheap) return;
  auto [it, inserted] =
      acks_[{at, down_op}].try_emplace(down_inst, position);
  if (!inserted) it->second = std::max(it->second, position);
}

void InvariantAuditor::OnSeedAck(InstanceId at, OperatorId down_op,
                                 InstanceId down_inst, int64_t position) {
  if (level_ < kAuditCheap) return;
  // Seeding overwrites: a restored replacement's position derives from the
  // checkpoint it was restored from, not from this link's history. Its id is
  // fresh (never reused), so a seed never rewinds a live acknowledgement.
  acks_[{at, down_op}][down_inst] = position;
}

int64_t InvariantAuditor::AllowedTrimBound(
    InstanceId at, OperatorId down_op,
    const std::vector<InstanceId>& current) const {
  // Mirror of TrimTracker::MaybeTrim's bound (Algorithm 1 line 4): the
  // furthest position every current partition with outstanding tuples has
  // acknowledged; when nothing is outstanding anywhere, everything sent so
  // far is checkpoint-covered.
  const auto acks_it = acks_.find({at, down_op});
  const auto sent_it = sent_.find({at, down_op});
  static const std::map<InstanceId, int64_t> kEmpty;
  const auto& acks = acks_it == acks_.end() ? kEmpty : acks_it->second;
  const auto& sent = sent_it == sent_.end() ? kEmpty : sent_it->second;
  auto lookup = [](const std::map<InstanceId, int64_t>& table,
                   InstanceId id) {
    auto it = table.find(id);
    return it == table.end() ? INT64_MIN : it->second;
  };
  int64_t bound = INT64_MAX;
  int64_t max_sent = INT64_MIN;
  for (InstanceId inst : current) {
    const int64_t s = lookup(sent, inst);
    const int64_t a = lookup(acks, inst);
    max_sent = std::max(max_sent, s);
    if (s > a) bound = std::min(bound, a);
  }
  return bound == INT64_MAX ? max_sent : bound;
}

void InvariantAuditor::OnTrim(InstanceId at, OperatorId down_op,
                              int64_t up_to,
                              const std::vector<InstanceId>& current) {
  if (level_ < kAuditCheap) return;
  const PeerKey key{at, down_op};
  if (auto it = last_trim_.find(key);
      it != last_trim_.end() && up_to < it->second) {
    std::ostringstream msg;
    msg << "instance " << at << " trim for op " << down_op
        << " regressed from " << it->second << " to " << up_to
        << " (a regressing trim bound implies an earlier trim dropped "
           "tuples that were not yet covered)";
    Fail("trim-monotonicity", msg.str());
    return;
  }
  const int64_t allowed = AllowedTrimBound(at, down_op, current);
  if (up_to > allowed) {
    std::ostringstream msg;
    msg << "instance " << at << " trims output buffer for op " << down_op
        << " through " << up_to << " but downstream checkpoints only cover "
        << allowed << " (Algorithm 1 line 4: a failure now would need "
           "tuples the trim just discarded)";
    Fail("checkpoint-covers-trim", msg.str());
    return;
  }
  last_trim_[key] = up_to;
}

void InvariantAuditor::OnCheckpointStored(InstanceId owner, VmId owner_vm,
                                          InstanceId holder, VmId holder_vm,
                                          uint64_t seq) {
  if (level_ < kAuditCheap) return;
  if (holder == owner || holder_vm == owner_vm) {
    std::ostringstream msg;
    msg << "checkpoint of instance " << owner << " (VM " << owner_vm
        << ") stored at instance " << holder << " (VM " << holder_vm
        << "): backup and primary share a failure domain";
    Fail("backup-placement", msg.str());
    return;
  }
  if (auto it = last_stored_seq_.find(owner);
      it != last_stored_seq_.end() && seq <= it->second) {
    std::ostringstream msg;
    msg << "instance " << owner << " stored checkpoint seq " << seq
        << " after seq " << it->second
        << " (a stale checkpoint must never supersede a fresher one)";
    Fail("checkpoint-seq-monotonicity", msg.str());
    return;
  }
  if (suspended_.count(owner) != 0) {
    std::ostringstream msg;
    msg << "checkpoint seq " << seq << " of instance " << owner
        << " stored while the owner's checkpointing is suspended (its trim "
           "acks would drop tuples the coordinator's restore point needs)";
    Fail("no-store-while-suspended", msg.str());
    return;
  }
  if (aborted_ckpts_.count({owner, seq}) != 0) {
    std::ostringstream msg;
    msg << "checkpoint seq " << seq << " of instance " << owner
        << " was stored after the pipeline aborted it (an aborted async "
           "checkpoint must never reach the backup store)";
    Fail("aborted-checkpoint-stored", msg.str());
    return;
  }
  if (durable_) {
    auto it = durable_seq_.find(owner);
    if (it == durable_seq_.end() || it->second < seq) {
      std::ostringstream msg;
      msg << "checkpoint seq " << seq << " of instance " << owner
          << " stored (and about to trigger trim acks) without a durable "
             "append covering it (durable log has "
          << (it == durable_seq_.end() ? std::string("nothing")
                                       : "seq " + std::to_string(it->second))
          << ")";
      Fail("durable-log-covers-trim", msg.str());
      return;
    }
  }
  last_stored_seq_[owner] = seq;
}

// ------------------------------------------------ durable checkpoint log

void InvariantAuditor::SetDurableMode(bool durable) { durable_ = durable; }

void InvariantAuditor::OnDurableAppend(InstanceId owner, uint64_t seq) {
  if (level_ < kAuditCheap) return;
  if (durable_tombstoned_.count(owner) != 0) {
    std::ostringstream msg;
    msg << "durable append of seq " << seq << " for instance " << owner
        << " after its tombstone (instance ids are never reused, so a "
           "tombstoned owner can never store again)";
    Fail("index-matches-log", msg.str());
    return;
  }
  auto it = durable_seq_.find(owner);
  if (it != durable_seq_.end() && seq <= it->second) {
    std::ostringstream msg;
    msg << "durable append of seq " << seq << " for instance " << owner
        << " after seq " << it->second << " was already appended";
    Fail("index-matches-log", msg.str());
    return;
  }
  durable_seq_[owner] = seq;
}

void InvariantAuditor::OnDurableTombstone(InstanceId owner) {
  if (level_ < kAuditCheap) return;
  durable_tombstoned_.insert(owner);
  durable_seq_.erase(owner);
}

void InvariantAuditor::OnDurableIndexState(InstanceId owner, bool present,
                                           uint64_t seq) {
  if (level_ < kAuditCheap) return;
  const auto it = durable_seq_.find(owner);
  const bool expect_present = it != durable_seq_.end();
  if (present != expect_present ||
      (present && expect_present && seq != it->second)) {
    std::ostringstream msg;
    msg << "durable index view of instance " << owner << " is "
        << (present ? "seq " + std::to_string(seq) : std::string("absent"))
        << " but the append stream replays "
        << (expect_present ? "seq " + std::to_string(it->second)
                           : std::string("absent"));
    Fail("index-matches-log", msg.str());
  }
}

void InvariantAuditor::OnDurableIndexDivergence(const std::string& detail) {
  if (level_ < kAuditCheap) return;
  Fail("index-matches-log", detail);
}

// --------------------------------------- asynchronous checkpoint pipeline

void InvariantAuditor::OnCheckpointChunk(InstanceId owner, InstanceId holder,
                                         uint64_t seq, uint32_t index,
                                         uint32_t count, uint64_t chunk_bytes,
                                         uint64_t frame_bytes) {
  if (level_ < kAuditCheap) return;
  const auto key = std::make_tuple(owner, seq, holder);
  auto fail = [&](const std::string& what) {
    std::ostringstream msg;
    msg << "chunk " << index << "/" << count << " of checkpoint seq " << seq
        << " (owner " << owner << ", holder " << holder << "): " << what;
    chunk_streams_.erase(key);
    Fail("chunk-reassembly", msg.str());
  };
  auto it = chunk_streams_.find(key);
  if (it == chunk_streams_.end()) {
    if (index != 0) {
      fail("stream did not start at index 0");
      return;
    }
    it = chunk_streams_.emplace(key, ChunkStream{}).first;
    it->second.count = count;
    it->second.frame_bytes = frame_bytes;
  }
  ChunkStream& stream = it->second;
  if (index != stream.next_index) {
    fail("out-of-order chunk index (expected " +
         std::to_string(stream.next_index) + ")");
    return;
  }
  if (count != stream.count || frame_bytes != stream.frame_bytes) {
    fail("chunk disagrees with its stream's declared count/frame size");
    return;
  }
  stream.received += chunk_bytes;
  if (stream.received > stream.frame_bytes) {
    fail("chunk bytes overflow the declared frame size");
    return;
  }
  ++stream.next_index;
  if (stream.next_index == stream.count) {
    if (stream.received != stream.frame_bytes) {
      fail("last chunk closed the stream short of the declared frame size");
      return;
    }
    chunk_streams_.erase(it);
  }
}

void InvariantAuditor::OnCheckpointsSuspended(InstanceId instance) {
  if (level_ < kAuditCheap) return;
  suspended_.insert(instance);
}

void InvariantAuditor::OnCheckpointsResumed(InstanceId instance) {
  if (level_ < kAuditCheap) return;
  suspended_.erase(instance);
  // A suspend/restore cycle may rewind the owner's checkpoint lineage, after
  // which an aborted sequence number is legitimately reused by a fresh
  // checkpoint. The abort markers therefore only cover the suspension
  // window — exactly the window in which an aborted frame could still leak
  // through the pipeline.
  for (auto it = aborted_ckpts_.lower_bound({instance, 0});
       it != aborted_ckpts_.end() && it->first == instance;) {
    it = aborted_ckpts_.erase(it);
  }
}

void InvariantAuditor::OnAsyncCheckpointAborted(InstanceId owner,
                                                uint64_t seq) {
  if (level_ < kAuditCheap) return;
  aborted_ckpts_.insert({owner, seq});
}

// ------------------------------------------- Algorithm 2: partitioned state

void InvariantAuditor::CheckTiling(
    OperatorId down_op, const std::vector<core::RoutingState::Route>& routes) {
  auto fail = [&](const std::string& what) {
    std::ostringstream msg;
    msg << "routes of op " << down_op << ": " << what << " (routes:";
    for (const auto& r : routes) {
      msg << " [" << r.range.lo << "," << r.range.hi << "]->" << r.instance;
    }
    msg << ")";
    Fail("route-tiling", msg.str());
  };
  if (routes.empty()) {
    fail("empty route table");
    return;
  }
  std::vector<core::KeyRange> ranges;
  ranges.reserve(routes.size());
  for (const auto& r : routes) {
    if (r.instance == kInvalidInstance) {
      fail("route to invalid instance");
      return;
    }
    if (r.range.lo > r.range.hi) {
      fail("inverted range");
      return;
    }
    ranges.push_back(r.range);
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const core::KeyRange& a, const core::KeyRange& b) {
              return a.lo < b.lo;
            });
  if (ranges.front().lo != 0) {
    fail("key space does not start at 0");
    return;
  }
  for (size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i - 1].hi == UINT64_MAX ||
        ranges[i].lo != ranges[i - 1].hi + 1) {
      fail(ranges[i].lo <= ranges[i - 1].hi ? "overlapping ranges"
                                            : "gap in key space");
      return;
    }
  }
  if (ranges.back().hi != UINT64_MAX) {
    fail("key space does not end at UINT64_MAX");
    return;
  }
}

void InvariantAuditor::OnRoutesInstalled(
    OperatorId down_op, const std::vector<core::RoutingState::Route>& routes) {
  if (level_ < kAuditCheap) return;
  CheckTiling(down_op, routes);
  routes_[down_op] = routes;
  if (level_ >= kAuditExpensive) {
    // Whole-table sweep: one operator's install must not have invalidated
    // any other operator's tiling (it cannot in the current single-threaded
    // runtime; the sweep is the tripwire for future concurrent installs).
    for (const auto& [op, table] : routes_) {
      if (op != down_op) CheckTiling(op, table);
    }
  }
}

void InvariantAuditor::OnPartitioned(
    const core::StateCheckpoint& base,
    const std::vector<core::StateCheckpoint>& parts) {
  if (level_ < kAuditCheap) return;
  auto fail = [&](const std::string& what) {
    std::ostringstream msg;
    msg << "partitioning checkpoint of instance " << base.instance << " (op "
        << base.op << ", range [" << base.key_range.lo << ","
        << base.key_range.hi << "]) into " << parts.size()
        << " parts: " << what;
    Fail("partition-completeness", msg.str());
  };
  if (parts.empty()) {
    fail("no partitions");
    return;
  }
  // The partition ranges must exactly tile the base range.
  std::vector<core::KeyRange> ranges;
  ranges.reserve(parts.size());
  for (const auto& p : parts) ranges.push_back(p.key_range);
  std::sort(ranges.begin(), ranges.end(),
            [](const core::KeyRange& a, const core::KeyRange& b) {
              return a.lo < b.lo;
            });
  if (ranges.front().lo != base.key_range.lo ||
      ranges.back().hi != base.key_range.hi) {
    fail("partition ranges do not span the base range");
    return;
  }
  for (size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i - 1].hi == UINT64_MAX ||
        ranges[i].lo != ranges[i - 1].hi + 1) {
      fail("partition ranges do not tile the base range");
      return;
    }
  }
  // Every processing-state entry must land in exactly the partition whose
  // range contains its key: conservation of entry count plus per-partition
  // range membership implies the exact split (Algorithm 2 line 5).
  size_t entries = 0;
  for (const auto& p : parts) {
    for (const auto& [key, value] : p.processing.entries()) {
      if (!p.key_range.Contains(key)) {
        std::ostringstream what;
        what << "entry with key " << key << " landed in partition ["
             << p.key_range.lo << "," << p.key_range.hi << "]";
        fail(what.str());
        return;
      }
    }
    entries += p.processing.size();
  }
  if (entries != base.processing.size()) {
    std::ostringstream what;
    what << "processing-state entries not conserved: base "
         << base.processing.size() << ", partitions " << entries;
    fail(what.str());
    return;
  }
  // Buffer tuples are conserved across the split (Algorithm 2 line 7 assigns
  // the buffer to the first partition in the current implementation; the
  // audit only requires that none are lost or duplicated).
  size_t buffered = 0;
  for (const auto& p : parts) buffered += p.buffer.TotalTuples();
  if (buffered != base.buffer.TotalTuples()) {
    std::ostringstream what;
    what << "buffered tuples not conserved: base "
         << base.buffer.TotalTuples() << ", partitions " << buffered;
    fail(what.str());
    return;
  }
}

// ------------------------------------------- Algorithm 3: replay + fences

void InvariantAuditor::OnReplaySent(InstanceId from, InstanceId to,
                                    uint64_t tuples) {
  if (level_ < kAuditCheap) return;
  replay_sent_[{from, to}] += tuples;
}

void InvariantAuditor::OnFenceSent(uint64_t fence_id, InstanceId from,
                                   InstanceId to) {
  if (level_ < kAuditCheap) return;
  fence_snapshots_[{fence_id, {from, to}}] =
      FenceSnapshot{replay_sent_[{from, to}]};
}

void InvariantAuditor::OnReplayProcessed(InstanceId from, InstanceId to,
                                         uint64_t tuples) {
  if (level_ < kAuditCheap) return;
  replay_processed_[{from, to}] += tuples;
}

void InvariantAuditor::OnFenceProcessed(uint64_t fence_id, InstanceId from,
                                        InstanceId to) {
  if (level_ < kAuditCheap) return;
  const auto it = fence_snapshots_.find({fence_id, {from, to}});
  if (it == fence_snapshots_.end()) return;  // forwarded fence, no replay
  const uint64_t expected = it->second.replay_sent_at_fence;
  const uint64_t processed = replay_processed_[{from, to}];
  if (processed < expected) {
    std::ostringstream msg;
    msg << "fence " << fence_id << " processed at instance " << to
        << " after only " << processed << " of " << expected
        << " replayed tuples from instance " << from
        << " (the fence overtook the replay; the drain proof is void)";
    Fail("fence-before-replay", msg.str());
    return;
  }
  fence_snapshots_.erase(it);
}

// --------------------------------------------- reconfiguration plane

void InvariantAuditor::OnPlanStarted(uint64_t plan_id, OperatorId op) {
  if (level_ < kAuditCheap) return;
  if (auto it = active_plan_of_op_.find(op);
      it != active_plan_of_op_.end()) {
    std::ostringstream msg;
    msg << "plan " << plan_id << " started for op " << op << " while plan "
        << it->second << " is still reconfiguring it";
    Fail("one-plan-per-operator", msg.str());
  }
  active_plan_of_op_[op] = plan_id;
  PlanMirror& mirror = plans_[plan_id];
  mirror.op = op;
  if (auto it = routes_.find(op); it != routes_.end()) {
    mirror.had_routes = true;
    mirror.routes_at_start = it->second;
  }
}

void InvariantAuditor::OnPlanVmAcquired(uint64_t plan_id, VmId vm) {
  if (level_ < kAuditCheap) return;
  auto it = plans_.find(plan_id);
  if (it == plans_.end()) return;  // grant landed after the plan finished
  it->second.outstanding_vms.insert(vm);
}

void InvariantAuditor::OnPlanVmDisposed(uint64_t plan_id, VmId vm) {
  if (level_ < kAuditCheap) return;
  auto it = plans_.find(plan_id);
  if (it == plans_.end()) return;
  it->second.outstanding_vms.erase(vm);
}

void InvariantAuditor::OnPlanSuspendedCheckpoints(uint64_t plan_id,
                                                  InstanceId instance) {
  if (level_ < kAuditCheap) return;
  auto it = plans_.find(plan_id);
  if (it == plans_.end()) return;
  it->second.suspended.insert(instance);
}

void InvariantAuditor::OnInstanceDead(InstanceId instance) {
  if (level_ < kAuditCheap) return;
  dead_instances_.insert(instance);
}

void InvariantAuditor::OnPlanFinished(uint64_t plan_id, OperatorId op,
                                      bool aborted) {
  if (level_ < kAuditCheap) return;
  auto it = plans_.find(plan_id);
  if (it == plans_.end()) return;
  const PlanMirror& mirror = it->second;

  // Every VM the plan acquired must have been consumed by a deployment or
  // released back to the provider — on commit AND on abort.
  if (!mirror.outstanding_vms.empty()) {
    std::ostringstream msg;
    msg << "plan " << plan_id << " (op " << op << ", "
        << (aborted ? "aborted" : "committed") << ") finished holding "
        << mirror.outstanding_vms.size() << " undisposed VM(s):";
    for (VmId vm : mirror.outstanding_vms) msg << " " << vm;
    Fail("no-leaked-vm", msg.str());
  }

  if (aborted) {
    // Every checkpoint schedule the plan froze must run again, unless the
    // instance died (its replacement starts a fresh schedule).
    for (InstanceId inst : mirror.suspended) {
      if (suspended_.contains(inst) && !dead_instances_.contains(inst)) {
        std::ostringstream msg;
        msg << "aborted plan " << plan_id << " (op " << op
            << ") left live instance " << inst
            << " with its checkpoint schedule suspended";
        Fail("checkpoints-resumed-after-abort", msg.str());
      }
    }

    // An aborted plan must leave the operator's routing exactly as it found
    // it — the compensations reinstalled the old routes (or never touched
    // them).
    const auto rit = routes_.find(op);
    const bool has_routes = rit != routes_.end();
    bool same = has_routes == mirror.had_routes;
    if (same && has_routes) {
      const auto& now = rit->second;
      const auto& before = mirror.routes_at_start;
      same = now.size() == before.size();
      for (size_t i = 0; same && i < now.size(); ++i) {
        same = now[i].range.lo == before[i].range.lo &&
               now[i].range.hi == before[i].range.hi &&
               now[i].instance == before[i].instance;
      }
    }
    if (!same) {
      std::ostringstream msg;
      msg << "aborted plan " << plan_id << " (op " << op
          << ") left the operator's routing different from the table it "
             "started with";
      Fail("routes-restored-on-abort", msg.str());
    }
  }

  if (auto ait = active_plan_of_op_.find(op);
      ait != active_plan_of_op_.end() && ait->second == plan_id) {
    active_plan_of_op_.erase(ait);
  }
  plans_.erase(it);
}

// ------------------------------------------------ recovery: exactly-once

void InvariantAuditor::OnSinkDelivered(OperatorId sink_op,
                                       core::OriginId origin,
                                       int64_t timestamp) {
  if (level_ < kAuditExpensive) return;
  auto& stamps = sink_stamps_[{sink_op, origin}];
  if (!stamps.insert(timestamp).second) {
    std::ostringstream msg;
    msg << "sink op " << sink_op << " delivered stamp (origin " << origin
        << ", ts " << timestamp
        << ") twice: duplicate filtering failed across recovery";
    Fail("sink-exactly-once", msg.str());
  }
}

}  // namespace seep::verify
