#ifndef SEEP_SPS_SPS_H_
#define SEEP_SPS_SPS_H_

#include <map>
#include <memory>

#include "control/bottleneck_detector.h"
#include "control/deployment_manager.h"
#include "control/recovery_coordinator.h"
#include "control/scale_out_coordinator.h"
#include "core/query_graph.h"
#include "runtime/cluster.h"

namespace seep::sps {

/// Top-level configuration: the cluster substrate plus every control-plane
/// policy knob (checkpoint interval c, report interval r, threshold δ,
/// consecutive reports k, VM pool size p, recovery parallelism, ...).
struct SpsConfig {
  runtime::ClusterConfig cluster;
  control::ScalingPolicyConfig scaling;
  control::CoordinatorConfig coordinator;
  control::FailureDetectorConfig failure_detector;
  control::RecoveryConfig recovery;

  /// Initial parallelism per logical operator (manual scale-out experiments,
  /// Fig. 10). Operators not listed start with one instance.
  std::map<OperatorId, uint32_t> initial_parallelism;
};

/// The stream processing system: a deployed query plus the integrated
/// scale-out/fault-tolerance machinery of the paper. This is the public
/// entry point used by examples, tests and benches:
///
///   core::QueryGraph q;
///   ... build query ...
///   sps::Sps sps(std::move(q), config);
///   SEEP_CHECK(sps.Deploy().ok());
///   sps.InjectFailure(counter_op, /*at_seconds=*/60);
///   sps.RunFor(120);
///   ... read sps.metrics() ...
class Sps {
 public:
  Sps(core::QueryGraph graph, SpsConfig config);
  ~Sps();

  Sps(const Sps&) = delete;
  Sps& operator=(const Sps&) = delete;

  /// Provisions VMs, deploys the execution graph, pre-fills the VM pool and
  /// starts the detectors. Call once, before RunFor.
  [[nodiscard]] Status Deploy();

  /// Advances simulated time by `seconds`.
  void RunFor(double seconds);

  /// Advances simulated time up to absolute second `t`.
  void RunUntil(double t_seconds);

  /// Schedules a crash-stop of the VM hosting the (first live) instance of
  /// `op` at absolute time `at_seconds`.
  void InjectFailure(OperatorId op, double at_seconds);

  /// Schedules a manual scale-out of `op` (partitioning its most recent
  /// instance in two) at absolute time `at_seconds`.
  void RequestScaleOut(OperatorId op, double at_seconds);

  /// Schedules a manual scale-in of `op` at absolute time `at_seconds`.
  void RequestScaleIn(OperatorId op, double at_seconds);

  double NowSeconds() const;
  uint32_t ParallelismOf(OperatorId op) const;
  size_t VmsInUse() const;

  runtime::MetricsRegistry& metrics() { return *cluster_->metrics(); }
  runtime::Cluster& cluster() { return *cluster_; }
  control::ScaleOutCoordinator& scale_out_coordinator() {
    return *scale_out_;
  }
  control::RecoveryCoordinator& recovery_coordinator() { return *recovery_; }
  const core::QueryGraph& graph() const { return graph_; }

 private:
  core::QueryGraph graph_;
  SpsConfig config_;
  std::unique_ptr<runtime::Cluster> cluster_;
  std::unique_ptr<control::ScaleOutCoordinator> scale_out_;
  std::unique_ptr<control::BottleneckDetector> bottleneck_;
  std::unique_ptr<control::RecoveryCoordinator> recovery_;
  std::unique_ptr<control::DeploymentManager> deployment_;
  bool deployed_ = false;
};

}  // namespace seep::sps

#endif  // SEEP_SPS_SPS_H_
