#include "sps/sps.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/operator_instance.h"

namespace seep::sps {

Sps::Sps(core::QueryGraph graph, SpsConfig config)
    : graph_(std::move(graph)), config_(config) {
  cluster_ = std::make_unique<runtime::Cluster>(&graph_, config_.cluster);
  scale_out_ = std::make_unique<control::ScaleOutCoordinator>(
      cluster_.get(), config_.coordinator);
  bottleneck_ = std::make_unique<control::BottleneckDetector>(
      cluster_.get(), scale_out_.get(), config_.scaling);
  recovery_ = std::make_unique<control::RecoveryCoordinator>(
      cluster_.get(), scale_out_.get(), config_.failure_detector,
      config_.recovery);
  deployment_ = std::make_unique<control::DeploymentManager>(cluster_.get());
}

Sps::~Sps() = default;

[[nodiscard]] Status Sps::Deploy() {
  if (deployed_) return Status::FailedPrecondition("already deployed");
  SEEP_RETURN_IF_ERROR(deployment_->DeployAll(config_.initial_parallelism));
  bottleneck_->Start();
  recovery_->Start();
  deployed_ = true;
  return Status::OK();
}

void Sps::RunFor(double seconds) {
  cluster_->simulation()->RunUntil(cluster_->Now() + SecondsToSim(seconds));
}

void Sps::RunUntil(double t_seconds) {
  const SimTime target = SecondsToSim(t_seconds);
  if (target > cluster_->Now()) cluster_->simulation()->RunUntil(target);
}

void Sps::InjectFailure(OperatorId op, double at_seconds) {
  cluster_->simulation()->ScheduleAt(SecondsToSim(at_seconds), [this, op]() {
    const Status status = cluster_->membership()->KillOperator(op);
    if (!status.ok()) {
      SEEP_LOG(kWarn, cluster_->Now())
          << "failure injection on op " << op
          << " failed: " << status.ToString();
    }
  });
}

void Sps::RequestScaleOut(OperatorId op, double at_seconds) {
  cluster_->simulation()->ScheduleAt(SecondsToSim(at_seconds), [this, op]() {
    const auto live = cluster_->LiveInstancesOf(op);
    if (live.empty()) return;
    scale_out_->ScaleOutInstance(live.back(), 2, /*recovery=*/false);
  });
}

void Sps::RequestScaleIn(OperatorId op, double at_seconds) {
  cluster_->simulation()->ScheduleAt(SecondsToSim(at_seconds), [this, op]() {
    scale_out_->ScaleIn(op);
  });
}

double Sps::NowSeconds() const { return SimToSeconds(cluster_->Now()); }

uint32_t Sps::ParallelismOf(OperatorId op) const {
  return static_cast<uint32_t>(cluster_->LiveInstancesOf(op).size());
}

size_t Sps::VmsInUse() const {
  size_t n = 0;
  for (const auto& [id, inst] : cluster_->instances()) {
    if (inst->alive() && !inst->stopped()) ++n;
  }
  return n;
}

}  // namespace seep::sps
