#ifndef SEEP_SERDE_ENCODER_H_
#define SEEP_SERDE_ENCODER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace seep::serde {

/// Appends primitive values to a growing byte buffer in a fixed,
/// architecture-independent little-endian format. Checkpoints, tuples and
/// operator state all use this codec, so checkpoint sizes (which drive the
/// paper's Fig. 14 overhead study) reflect real encoded bytes.
class Encoder {
 public:
  Encoder() = default;

  void AppendU8(uint8_t v) { buf_.push_back(v); }

  void AppendFixed32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
  }

  void AppendFixed64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
  }

  /// LEB128 variable-length unsigned integer.
  void AppendVarint64(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(uint8_t(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(uint8_t(v));
  }

  /// ZigZag-mapped signed varint (small magnitudes stay small).
  void AppendVarintSigned64(int64_t v) {
    AppendVarint64((static_cast<uint64_t>(v) << 1) ^
                   static_cast<uint64_t>(v >> 63));
  }

  void AppendDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AppendFixed64(bits);
  }

  /// Length-prefixed byte string.
  void AppendString(std::string_view s) {
    AppendVarint64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void AppendRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  std::vector<uint8_t> buf_;
};

}  // namespace seep::serde

#endif  // SEEP_SERDE_ENCODER_H_
