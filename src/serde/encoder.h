#ifndef SEEP_SERDE_ENCODER_H_
#define SEEP_SERDE_ENCODER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace seep::serde {

/// Appends primitive values to a growing byte buffer in a fixed,
/// architecture-independent little-endian format. Checkpoints, tuples and
/// operator state all use this codec, so checkpoint sizes (which drive the
/// paper's Fig. 14 overhead study) reflect real encoded bytes.
class Encoder {
 public:
  Encoder() = default;

  void AppendU8(uint8_t v) { buf_.push_back(v); }

  /// Grows the buffer's capacity by `n` bytes beyond the current size, so a
  /// burst of appends (e.g. a whole checkpoint of known ByteSize) costs one
  /// allocation instead of log(n) reallocation-and-copy cycles.
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  void AppendFixed32(uint32_t v) {
    const uint8_t staged[4] = {uint8_t(v), uint8_t(v >> 8), uint8_t(v >> 16),
                               uint8_t(v >> 24)};
    buf_.insert(buf_.end(), staged, staged + sizeof(staged));
  }

  void AppendFixed64(uint64_t v) {
    const uint8_t staged[8] = {uint8_t(v),       uint8_t(v >> 8),
                               uint8_t(v >> 16), uint8_t(v >> 24),
                               uint8_t(v >> 32), uint8_t(v >> 40),
                               uint8_t(v >> 48), uint8_t(v >> 56)};
    buf_.insert(buf_.end(), staged, staged + sizeof(staged));
  }

  /// LEB128 variable-length unsigned integer.
  void AppendVarint64(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(uint8_t(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(uint8_t(v));
  }

  /// ZigZag-mapped signed varint (small magnitudes stay small).
  void AppendVarintSigned64(int64_t v) {
    AppendVarint64((static_cast<uint64_t>(v) << 1) ^
                   static_cast<uint64_t>(v >> 63));
  }

  void AppendDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AppendFixed64(bits);
  }

  /// Length-prefixed byte string.
  void AppendString(std::string_view s) {
    AppendVarint64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void AppendRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Grows the buffer by exactly `n` bytes and returns a pointer to the new
  /// region, which the caller must fully overwrite (via the Write* helpers
  /// below). Bulk encoders of known size use this to replace per-append
  /// bounds checks with raw pointer stores — one resize, one pass.
  uint8_t* Extend(size_t n) {
    const size_t old = buf_.size();
    buf_.resize(old + n);
    return buf_.data() + old;
  }

  /// Raw-pointer variants of the appends, for writing into Extend() regions.
  /// Each returns the advanced cursor.
  static uint8_t* WriteFixed64(uint8_t* p, uint64_t v) {
    const uint8_t staged[8] = {uint8_t(v),       uint8_t(v >> 8),
                               uint8_t(v >> 16), uint8_t(v >> 24),
                               uint8_t(v >> 32), uint8_t(v >> 40),
                               uint8_t(v >> 48), uint8_t(v >> 56)};
    std::memcpy(p, staged, sizeof(staged));
    return p + sizeof(staged);
  }

  static uint8_t* WriteVarint64(uint8_t* p, uint64_t v) {
    while (v >= 0x80) {
      *p++ = uint8_t(v) | 0x80;
      v >>= 7;
    }
    *p++ = uint8_t(v);
    return p;
  }

  /// Encoded size of AppendVarint64(v)/WriteVarint64(v), without encoding.
  static size_t VarintSize(uint64_t v) {
    size_t n = 1;
    while (v >= 0x80) {
      ++n;
      v >>= 7;
    }
    return n;
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  std::vector<uint8_t> buf_;
};

}  // namespace seep::serde

#endif  // SEEP_SERDE_ENCODER_H_
