#ifndef SEEP_SERDE_BLOCK_CODEC_H_
#define SEEP_SERDE_BLOCK_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace seep::serde {

/// Self-contained LZ4-style block compressor for checkpoint frames: byte
/// sequences of [token | literals | 2-byte offset | match extension], greedy
/// hash-table matching, no entropy stage. Checkpoint payloads (sorted
/// key/value runs, repeated words, zero-heavy varints) compress well under
/// pure match coding, and both ends stay dependency-free.
///
/// Block layout: varint64 uncompressed size, then LZ4-style sequences. Each
/// sequence is a token byte whose high nibble is the literal length and low
/// nibble the match length minus 4 (nibble value 15 adds 255-run extension
/// bytes), the literals, then a 2-byte little-endian back-reference offset
/// (1..65535) unless the sequence is the final literals-only tail.
///
/// The stream is worth shipping only when it is smaller than the input; the
/// caller keeps the raw bytes otherwise (a flag travels beside the payload).
std::vector<uint8_t> BlockCompress(const uint8_t* data, size_t size);
std::vector<uint8_t> BlockCompress(const std::vector<uint8_t>& data);

/// Decompresses a BlockCompress stream. Fully bounds-checked: a truncated
/// stream, an offset pointing before the output start, a declared size above
/// `max_output`, or output over/underrun all return Corruption — no byte of
/// a corrupted block can drive an allocation or an out-of-bounds copy.
[[nodiscard]]
Result<std::vector<uint8_t>> BlockDecompress(const uint8_t* data, size_t size,
                                             size_t max_output);
[[nodiscard]]
Result<std::vector<uint8_t>> BlockDecompress(const std::vector<uint8_t>& data,
                                             size_t max_output);

}  // namespace seep::serde

#endif  // SEEP_SERDE_BLOCK_CODEC_H_
