#include "serde/frame.h"

#include "serde/crc32c.h"
#include "serde/decoder.h"
#include "serde/encoder.h"

namespace seep::serde {

std::vector<uint8_t> FramePayload(const std::vector<uint8_t>& payload) {
  Encoder enc;
  enc.Reserve(12 + payload.size());
  enc.AppendFixed64(payload.size());
  enc.AppendFixed32(Crc32c(payload.data(), payload.size()));
  enc.AppendRaw(payload.data(), payload.size());
  return std::move(enc).TakeBuffer();
}

Result<std::vector<uint8_t>> UnframePayload(
    const std::vector<uint8_t>& frame) {
  Decoder dec(frame);
  auto len = dec.ReadFixed64();
  if (!len.ok()) return len.status();
  auto crc = dec.ReadFixed32();
  if (!crc.ok()) return crc.status();
  if (dec.remaining() != len.value()) {
    return Status::Corruption("frame length mismatch");
  }
  std::vector<uint8_t> payload(frame.begin() + dec.position(), frame.end());
  if (Crc32c(payload.data(), payload.size()) != crc.value()) {
    return Status::Corruption("frame CRC mismatch");
  }
  return payload;
}

}  // namespace seep::serde
