#include "serde/frame.h"

#include "common/macros.h"
#include "serde/crc32c.h"
#include "serde/decoder.h"
#include "serde/encoder.h"

namespace seep::serde {

[[nodiscard]]
Result<FrameHeader> ReadFrameHeader(const uint8_t* data, size_t size,
                                    uint64_t max_payload) {
  Decoder dec(data, size);
  FrameHeader header;
  SEEP_ASSIGN_OR_RETURN(header.payload_len, dec.ReadFixed64());
  SEEP_ASSIGN_OR_RETURN(header.crc, dec.ReadFixed32());
  if (header.payload_len > max_payload) {
    return Status::Corruption("frame length exceeds maximum");
  }
  return header;
}

std::vector<uint8_t> FramePayload(const std::vector<uint8_t>& payload) {
  Encoder enc;
  enc.Reserve(kFrameHeaderBytes + payload.size());
  enc.AppendFixed64(payload.size());
  enc.AppendFixed32(Crc32c(payload.data(), payload.size()));
  enc.AppendRaw(payload.data(), payload.size());
  return std::move(enc).TakeBuffer();
}

[[nodiscard]]
Result<std::vector<uint8_t>> UnframePayload(const std::vector<uint8_t>& frame,
                                            uint64_t max_payload) {
  FrameHeader header;
  SEEP_ASSIGN_OR_RETURN(
      header, ReadFrameHeader(frame.data(), frame.size(), max_payload));
  if (frame.size() - kFrameHeaderBytes != header.payload_len) {
    return Status::Corruption("frame length mismatch");
  }
  std::vector<uint8_t> payload(frame.begin() + kFrameHeaderBytes,
                               frame.end());
  if (Crc32c(payload.data(), payload.size()) != header.crc) {
    return Status::Corruption("frame CRC mismatch");
  }
  return payload;
}

}  // namespace seep::serde
