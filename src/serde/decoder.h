#ifndef SEEP_SERDE_DECODER_H_
#define SEEP_SERDE_DECODER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace seep::serde {

/// Reads values written by Encoder. All reads are bounds-checked and report
/// truncation/corruption as Status rather than crashing, since checkpoints
/// can arrive damaged from a failing VM.
class Decoder {
 public:
  explicit Decoder(std::string_view data)
      : data_(reinterpret_cast<const uint8_t*>(data.data())),
        size_(data.size()) {}
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}

  [[nodiscard]] Result<uint8_t> ReadU8() {
    if (pos_ + 1 > size_) return Truncated("u8");
    return data_[pos_++];
  }

  [[nodiscard]] Result<uint32_t> ReadFixed32() {
    if (pos_ + 4 > size_) return Truncated("fixed32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] Result<uint64_t> ReadFixed64() {
    if (pos_ + 8 > size_) return Truncated("fixed64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] Result<uint64_t> ReadVarint64() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return Truncated("varint");
      if (shift >= 64) {
        return Status::Corruption("varint too long");
      }
      const uint8_t byte = data_[pos_++];
      v |= uint64_t(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  [[nodiscard]] Result<int64_t> ReadVarintSigned64() {
    auto raw = ReadVarint64();
    if (!raw.ok()) return raw.status();
    const uint64_t u = raw.value();
    return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  [[nodiscard]] Result<double> ReadDouble() {
    auto bits = ReadFixed64();
    if (!bits.ok()) return bits.status();
    double v;
    const uint64_t b = bits.value();
    std::memcpy(&v, &b, sizeof(v));
    return v;
  }

  [[nodiscard]] Result<std::string> ReadString() {
    auto len = ReadVarint64();
    if (!len.ok()) return len.status();
    if (pos_ + len.value() > size_) return Truncated("string body");
    std::string out(reinterpret_cast<const char*>(data_ + pos_),
                    static_cast<size_t>(len.value()));
    pos_ += static_cast<size_t>(len.value());
    return out;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

 private:
  [[nodiscard]] Status Truncated(const char* what) const {
    return Status::Corruption(std::string("truncated input reading ") + what);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace seep::serde

#endif  // SEEP_SERDE_DECODER_H_
