#include "serde/block_codec.h"

#include <cstring>

#include "common/macros.h"

namespace seep::serde {

namespace {

// Positions hashed over 4-byte windows; 1 << 14 slots keeps the table in L1
// while finding the long runs checkpoint payloads are made of.
constexpr size_t kHashBits = 14;
constexpr size_t kHashSize = size_t{1} << kHashBits;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
// The last bytes of a block are always emitted as literals so the match
// extension loop below never reads past the input end.
constexpr size_t kTailLiterals = 12;

uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t Hash32(uint32_t v) {
  // Fibonacci hashing on the 4-byte window.
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(uint8_t(v) | 0x80);
    v >>= 7;
  }
  out->push_back(uint8_t(v));
}

// Nibble 15 means "add 255-run extension bytes until a byte < 255".
void PutLength(std::vector<uint8_t>* out, size_t len) {
  while (len >= 255) {
    out->push_back(255);
    len -= 255;
  }
  out->push_back(uint8_t(len));
}

void EmitSequence(std::vector<uint8_t>* out, const uint8_t* literals,
                  size_t lit_len, size_t offset, size_t match_len) {
  const size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  const size_t match_extra = match_len == 0 ? 0 : match_len - kMinMatch;
  const size_t match_nibble = match_extra < 15 ? match_extra : 15;
  out->push_back(uint8_t((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutLength(out, lit_len - 15);
  out->insert(out->end(), literals, literals + lit_len);
  if (match_len == 0) return;  // final literals-only sequence
  out->push_back(uint8_t(offset));
  out->push_back(uint8_t(offset >> 8));
  if (match_nibble == 15) PutLength(out, match_extra - 15);
}

}  // namespace

std::vector<uint8_t> BlockCompress(const uint8_t* data, size_t size) {
  std::vector<uint8_t> out;
  out.reserve(size / 2 + 16);
  PutVarint(&out, size);
  if (size <= kTailLiterals + kMinMatch) {
    if (size > 0) EmitSequence(&out, data, size, 0, 0);
    return out;
  }
  // table[h] holds position + 1; 0 means empty.
  std::vector<uint32_t> table(kHashSize, 0);
  const size_t match_limit = size - kTailLiterals;
  size_t anchor = 0;
  size_t i = 0;
  while (i < match_limit) {
    const uint32_t h = Hash32(Read32(data + i));
    const size_t candidate = table[h] == 0 ? SIZE_MAX : table[h] - 1;
    table[h] = uint32_t(i + 1);
    if (candidate == SIZE_MAX || i - candidate > kMaxOffset ||
        Read32(data + candidate) != Read32(data + i)) {
      ++i;
      continue;
    }
    size_t len = kMinMatch;
    // Stop kTailLiterals-1 short of the end so the final literal run below
    // is never empty and never read out of bounds.
    const size_t extend_limit = size - (kTailLiterals - kMinMatch);
    while (i + len < extend_limit && data[candidate + len] == data[i + len]) {
      ++len;
    }
    EmitSequence(&out, data + anchor, i - anchor, i - candidate, len);
    i += len;
    anchor = i;
  }
  EmitSequence(&out, data + anchor, size - anchor, 0, 0);
  return out;
}

std::vector<uint8_t> BlockCompress(const std::vector<uint8_t>& data) {
  return BlockCompress(data.data(), data.size());
}

[[nodiscard]]
Result<std::vector<uint8_t>> BlockDecompress(const uint8_t* data, size_t size,
                                             size_t max_output) {
  size_t pos = 0;
  // Varint uncompressed size, validated against max_output before any
  // allocation is derived from it.
  uint64_t raw_size = 0;
  for (int shift = 0;; shift += 7) {
    if (pos >= size || shift > 63) {
      return Status::Corruption("block codec: bad size varint");
    }
    const uint8_t b = data[pos++];
    raw_size |= uint64_t(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
  }
  if (raw_size > max_output) {
    return Status::Corruption("block codec: declared size exceeds limit");
  }
  std::vector<uint8_t> out;
  out.reserve(raw_size);

  const auto read_length = [&](size_t nibble,
                               size_t* len) -> Status {
    *len = nibble;
    if (nibble != 15) return Status::OK();
    while (true) {
      if (pos >= size) return Status::Corruption("block codec: truncated run");
      const uint8_t b = data[pos++];
      *len += b;
      if (b != 255) return Status::OK();
    }
  };

  while (pos < size) {
    const uint8_t token = data[pos++];
    size_t lit_len = 0;
    SEEP_RETURN_IF_ERROR(read_length(token >> 4, &lit_len));
    if (lit_len > size - pos) {
      return Status::Corruption("block codec: literal overrun");
    }
    if (lit_len > raw_size - out.size()) {
      return Status::Corruption("block codec: output overrun");
    }
    out.insert(out.end(), data + pos, data + pos + lit_len);
    pos += lit_len;
    if (pos == size) break;  // final literals-only sequence
    if (size - pos < 2) {
      return Status::Corruption("block codec: truncated offset");
    }
    const size_t offset = size_t(data[pos]) | (size_t(data[pos + 1]) << 8);
    pos += 2;
    if (offset == 0 || offset > out.size()) {
      return Status::Corruption("block codec: offset out of range");
    }
    size_t match_len = 0;
    SEEP_RETURN_IF_ERROR(read_length(token & 0x0F, &match_len));
    match_len += kMinMatch;
    if (match_len > raw_size - out.size()) {
      return Status::Corruption("block codec: match overrun");
    }
    // Byte-wise copy: overlapping back-references (offset < match_len)
    // intentionally replicate the just-written bytes, like LZ4 runs.
    size_t src = out.size() - offset;
    for (size_t k = 0; k < match_len; ++k) out.push_back(out[src + k]);
  }
  if (out.size() != raw_size) {
    return Status::Corruption("block codec: size mismatch");
  }
  return out;
}

[[nodiscard]]
Result<std::vector<uint8_t>> BlockDecompress(const std::vector<uint8_t>& data,
                                             size_t max_output) {
  return BlockDecompress(data.data(), data.size(), max_output);
}

}  // namespace seep::serde
