#ifndef SEEP_SERDE_FRAME_H_
#define SEEP_SERDE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace seep::serde {

/// Bytes of the [length u64 | crc32c u32] header FramePayload prepends.
inline constexpr size_t kFrameHeaderBytes = 12;

/// Default ceiling on a frame's declared payload length. A frame header is
/// read before its payload exists in memory (the TCP transport streams
/// frames), so a corrupted or hostile length must be rejected *before*
/// anything is allocated from it; 64 MiB comfortably covers the largest
/// checkpoint the experiments ship while bounding the damage of a flipped
/// high bit in the length field.
inline constexpr uint64_t kDefaultMaxFramePayload = 64ull << 20;

/// The validated header of a frame: declared payload length and its crc32c.
struct FrameHeader {
  uint64_t payload_len = 0;
  uint32_t crc = 0;
};

/// Parses and validates a frame header from the first kFrameHeaderBytes of
/// `data`. Returns Corruption when fewer than kFrameHeaderBytes are present
/// or the declared payload length exceeds `max_payload` — checked before any
/// caller could allocate payload_len bytes.
[[nodiscard]]
Result<FrameHeader> ReadFrameHeader(const uint8_t* data, size_t size,
                                    uint64_t max_payload);

/// Wraps a payload in a [length | crc32c | payload] frame. Checkpoints cross
/// the (simulated or TCP) network framed so the receive path can verify
/// integrity.
std::vector<uint8_t> FramePayload(const std::vector<uint8_t>& payload);

/// Validates and strips a frame produced by FramePayload. Returns Corruption
/// on a truncated header, a declared length exceeding `max_payload` or the
/// remaining buffer, or a CRC mismatch. The length checks run before the
/// payload is copied, so a corrupt length can never drive an allocation.
[[nodiscard]] Result<std::vector<uint8_t>> UnframePayload(
    const std::vector<uint8_t>& frame,
    uint64_t max_payload = kDefaultMaxFramePayload);

}  // namespace seep::serde

#endif  // SEEP_SERDE_FRAME_H_
