#ifndef SEEP_SERDE_FRAME_H_
#define SEEP_SERDE_FRAME_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace seep::serde {

/// Wraps a payload in a [length | crc32c | payload] frame. Checkpoints cross
/// the (simulated) network framed so the restore path can verify integrity.
std::vector<uint8_t> FramePayload(const std::vector<uint8_t>& payload);

/// Validates and strips a frame produced by FramePayload. Returns Corruption
/// on length/CRC mismatch.
Result<std::vector<uint8_t>> UnframePayload(const std::vector<uint8_t>& frame);

}  // namespace seep::serde

#endif  // SEEP_SERDE_FRAME_H_
