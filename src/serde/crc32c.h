#ifndef SEEP_SERDE_CRC32C_H_
#define SEEP_SERDE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace seep::serde {

/// CRC-32C (Castagnoli) over `n` bytes, starting from `init` (pass the
/// previous value to extend a running checksum). Software table
/// implementation; used to frame checkpoints and detect corruption.
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

}  // namespace seep::serde

#endif  // SEEP_SERDE_CRC32C_H_
