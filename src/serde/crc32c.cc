#include "serde/crc32c.h"

#include <array>

namespace seep::serde {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected CRC-32C polynomial

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t init) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~init;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace seep::serde
