# Empty dependencies file for topk_elastic.
# This may be replaced when dependencies are built.
