file(REMOVE_RECURSE
  "CMakeFiles/topk_elastic.dir/topk_elastic.cpp.o"
  "CMakeFiles/topk_elastic.dir/topk_elastic.cpp.o.d"
  "topk_elastic"
  "topk_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
