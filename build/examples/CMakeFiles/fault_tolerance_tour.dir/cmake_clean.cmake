file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerance_tour.dir/fault_tolerance_tour.cpp.o"
  "CMakeFiles/fault_tolerance_tour.dir/fault_tolerance_tour.cpp.o.d"
  "fault_tolerance_tour"
  "fault_tolerance_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerance_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
