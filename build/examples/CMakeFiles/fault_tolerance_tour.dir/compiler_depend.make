# Empty compiler generated dependencies file for fault_tolerance_tour.
# This may be replaced when dependencies are built.
