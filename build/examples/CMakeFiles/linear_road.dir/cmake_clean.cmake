file(REMOVE_RECURSE
  "CMakeFiles/linear_road.dir/linear_road.cpp.o"
  "CMakeFiles/linear_road.dir/linear_road.cpp.o.d"
  "linear_road"
  "linear_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
