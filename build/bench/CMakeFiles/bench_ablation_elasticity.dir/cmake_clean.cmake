file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_elasticity.dir/bench_ablation_elasticity.cc.o"
  "CMakeFiles/bench_ablation_elasticity.dir/bench_ablation_elasticity.cc.o.d"
  "bench_ablation_elasticity"
  "bench_ablation_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
