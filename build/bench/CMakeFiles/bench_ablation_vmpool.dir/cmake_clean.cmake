file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vmpool.dir/bench_ablation_vmpool.cc.o"
  "CMakeFiles/bench_ablation_vmpool.dir/bench_ablation_vmpool.cc.o.d"
  "bench_ablation_vmpool"
  "bench_ablation_vmpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vmpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
