# Empty compiler generated dependencies file for bench_ablation_vmpool.
# This may be replaced when dependencies are built.
