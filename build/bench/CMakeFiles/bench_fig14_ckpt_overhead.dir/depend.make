# Empty dependencies file for bench_fig14_ckpt_overhead.
# This may be replaced when dependencies are built.
