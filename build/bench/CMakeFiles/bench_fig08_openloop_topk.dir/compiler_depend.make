# Empty compiler generated dependencies file for bench_fig08_openloop_topk.
# This may be replaced when dependencies are built.
