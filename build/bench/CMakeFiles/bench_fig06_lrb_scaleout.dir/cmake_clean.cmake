file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_lrb_scaleout.dir/bench_fig06_lrb_scaleout.cc.o"
  "CMakeFiles/bench_fig06_lrb_scaleout.dir/bench_fig06_lrb_scaleout.cc.o.d"
  "bench_fig06_lrb_scaleout"
  "bench_fig06_lrb_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_lrb_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
