# Empty dependencies file for bench_fig06_lrb_scaleout.
# This may be replaced when dependencies are built.
