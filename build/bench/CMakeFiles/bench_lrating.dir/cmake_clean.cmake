file(REMOVE_RECURSE
  "CMakeFiles/bench_lrating.dir/bench_lrating.cc.o"
  "CMakeFiles/bench_lrating.dir/bench_lrating.cc.o.d"
  "bench_lrating"
  "bench_lrating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lrating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
