# Empty dependencies file for bench_lrating.
# This may be replaced when dependencies are built.
