file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_recovery_modes.dir/bench_fig11_recovery_modes.cc.o"
  "CMakeFiles/bench_fig11_recovery_modes.dir/bench_fig11_recovery_modes.cc.o.d"
  "bench_fig11_recovery_modes"
  "bench_fig11_recovery_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_recovery_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
