
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_recovery_modes.cc" "bench/CMakeFiles/bench_fig11_recovery_modes.dir/bench_fig11_recovery_modes.cc.o" "gcc" "bench/CMakeFiles/bench_fig11_recovery_modes.dir/bench_fig11_recovery_modes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sps/CMakeFiles/seep_sps.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/seep_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/seep_control.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/seep_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/seep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/seep_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/seep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/seep_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
