# Empty dependencies file for bench_fig11_recovery_modes.
# This may be replaced when dependencies are built.
