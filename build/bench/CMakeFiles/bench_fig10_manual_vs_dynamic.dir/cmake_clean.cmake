file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_manual_vs_dynamic.dir/bench_fig10_manual_vs_dynamic.cc.o"
  "CMakeFiles/bench_fig10_manual_vs_dynamic.dir/bench_fig10_manual_vs_dynamic.cc.o.d"
  "bench_fig10_manual_vs_dynamic"
  "bench_fig10_manual_vs_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_manual_vs_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
