# Empty dependencies file for bench_fig10_manual_vs_dynamic.
# This may be replaced when dependencies are built.
