file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_backup_spread.dir/bench_ablation_backup_spread.cc.o"
  "CMakeFiles/bench_ablation_backup_spread.dir/bench_ablation_backup_spread.cc.o.d"
  "bench_ablation_backup_spread"
  "bench_ablation_backup_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_backup_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
