# Empty dependencies file for bench_fig07_lrb_latency.
# This may be replaced when dependencies are built.
