file(REMOVE_RECURSE
  "CMakeFiles/integration_wordcount_test.dir/integration_wordcount_test.cc.o"
  "CMakeFiles/integration_wordcount_test.dir/integration_wordcount_test.cc.o.d"
  "integration_wordcount_test"
  "integration_wordcount_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_wordcount_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
