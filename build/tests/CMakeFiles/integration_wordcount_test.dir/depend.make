# Empty dependencies file for integration_wordcount_test.
# This may be replaced when dependencies are built.
