# Empty compiler generated dependencies file for integration_topk_test.
# This may be replaced when dependencies are built.
