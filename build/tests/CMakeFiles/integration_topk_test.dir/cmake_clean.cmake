file(REMOVE_RECURSE
  "CMakeFiles/integration_topk_test.dir/integration_topk_test.cc.o"
  "CMakeFiles/integration_topk_test.dir/integration_topk_test.cc.o.d"
  "integration_topk_test"
  "integration_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
