# Empty compiler generated dependencies file for network_semantics_test.
# This may be replaced when dependencies are built.
