file(REMOVE_RECURSE
  "CMakeFiles/network_semantics_test.dir/network_semantics_test.cc.o"
  "CMakeFiles/network_semantics_test.dir/network_semantics_test.cc.o.d"
  "network_semantics_test"
  "network_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
