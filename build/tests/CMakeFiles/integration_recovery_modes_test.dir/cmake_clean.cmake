file(REMOVE_RECURSE
  "CMakeFiles/integration_recovery_modes_test.dir/integration_recovery_modes_test.cc.o"
  "CMakeFiles/integration_recovery_modes_test.dir/integration_recovery_modes_test.cc.o.d"
  "integration_recovery_modes_test"
  "integration_recovery_modes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_recovery_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
