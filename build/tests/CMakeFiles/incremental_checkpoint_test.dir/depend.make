# Empty dependencies file for incremental_checkpoint_test.
# This may be replaced when dependencies are built.
