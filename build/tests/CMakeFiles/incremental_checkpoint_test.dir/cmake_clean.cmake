file(REMOVE_RECURSE
  "CMakeFiles/incremental_checkpoint_test.dir/incremental_checkpoint_test.cc.o"
  "CMakeFiles/incremental_checkpoint_test.dir/incremental_checkpoint_test.cc.o.d"
  "incremental_checkpoint_test"
  "incremental_checkpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
