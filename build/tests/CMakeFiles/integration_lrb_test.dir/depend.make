# Empty dependencies file for integration_lrb_test.
# This may be replaced when dependencies are built.
