file(REMOVE_RECURSE
  "CMakeFiles/integration_lrb_test.dir/integration_lrb_test.cc.o"
  "CMakeFiles/integration_lrb_test.dir/integration_lrb_test.cc.o.d"
  "integration_lrb_test"
  "integration_lrb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_lrb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
