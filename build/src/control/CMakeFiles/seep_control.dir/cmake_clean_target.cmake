file(REMOVE_RECURSE
  "libseep_control.a"
)
