file(REMOVE_RECURSE
  "CMakeFiles/seep_control.dir/bottleneck_detector.cc.o"
  "CMakeFiles/seep_control.dir/bottleneck_detector.cc.o.d"
  "CMakeFiles/seep_control.dir/deployment_manager.cc.o"
  "CMakeFiles/seep_control.dir/deployment_manager.cc.o.d"
  "CMakeFiles/seep_control.dir/recovery_coordinator.cc.o"
  "CMakeFiles/seep_control.dir/recovery_coordinator.cc.o.d"
  "CMakeFiles/seep_control.dir/scale_out_coordinator.cc.o"
  "CMakeFiles/seep_control.dir/scale_out_coordinator.cc.o.d"
  "libseep_control.a"
  "libseep_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seep_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
