# Empty dependencies file for seep_control.
# This may be replaced when dependencies are built.
