# Empty compiler generated dependencies file for seep_runtime.
# This may be replaced when dependencies are built.
