file(REMOVE_RECURSE
  "libseep_runtime.a"
)
