file(REMOVE_RECURSE
  "CMakeFiles/seep_runtime.dir/cluster.cc.o"
  "CMakeFiles/seep_runtime.dir/cluster.cc.o.d"
  "CMakeFiles/seep_runtime.dir/operator_instance.cc.o"
  "CMakeFiles/seep_runtime.dir/operator_instance.cc.o.d"
  "libseep_runtime.a"
  "libseep_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seep_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
