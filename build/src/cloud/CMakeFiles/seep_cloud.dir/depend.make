# Empty dependencies file for seep_cloud.
# This may be replaced when dependencies are built.
