file(REMOVE_RECURSE
  "libseep_cloud.a"
)
