file(REMOVE_RECURSE
  "CMakeFiles/seep_cloud.dir/cloud_provider.cc.o"
  "CMakeFiles/seep_cloud.dir/cloud_provider.cc.o.d"
  "CMakeFiles/seep_cloud.dir/vm_pool.cc.o"
  "CMakeFiles/seep_cloud.dir/vm_pool.cc.o.d"
  "libseep_cloud.a"
  "libseep_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seep_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
