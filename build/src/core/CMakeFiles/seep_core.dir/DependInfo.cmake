
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/key_range.cc" "src/core/CMakeFiles/seep_core.dir/key_range.cc.o" "gcc" "src/core/CMakeFiles/seep_core.dir/key_range.cc.o.d"
  "/root/repo/src/core/query_graph.cc" "src/core/CMakeFiles/seep_core.dir/query_graph.cc.o" "gcc" "src/core/CMakeFiles/seep_core.dir/query_graph.cc.o.d"
  "/root/repo/src/core/state.cc" "src/core/CMakeFiles/seep_core.dir/state.cc.o" "gcc" "src/core/CMakeFiles/seep_core.dir/state.cc.o.d"
  "/root/repo/src/core/state_ops.cc" "src/core/CMakeFiles/seep_core.dir/state_ops.cc.o" "gcc" "src/core/CMakeFiles/seep_core.dir/state_ops.cc.o.d"
  "/root/repo/src/core/tuple.cc" "src/core/CMakeFiles/seep_core.dir/tuple.cc.o" "gcc" "src/core/CMakeFiles/seep_core.dir/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/seep_serde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
