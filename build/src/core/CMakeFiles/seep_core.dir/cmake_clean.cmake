file(REMOVE_RECURSE
  "CMakeFiles/seep_core.dir/key_range.cc.o"
  "CMakeFiles/seep_core.dir/key_range.cc.o.d"
  "CMakeFiles/seep_core.dir/query_graph.cc.o"
  "CMakeFiles/seep_core.dir/query_graph.cc.o.d"
  "CMakeFiles/seep_core.dir/state.cc.o"
  "CMakeFiles/seep_core.dir/state.cc.o.d"
  "CMakeFiles/seep_core.dir/state_ops.cc.o"
  "CMakeFiles/seep_core.dir/state_ops.cc.o.d"
  "CMakeFiles/seep_core.dir/tuple.cc.o"
  "CMakeFiles/seep_core.dir/tuple.cc.o.d"
  "libseep_core.a"
  "libseep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
