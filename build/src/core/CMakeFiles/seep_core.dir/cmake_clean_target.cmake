file(REMOVE_RECURSE
  "libseep_core.a"
)
