# Empty dependencies file for seep_core.
# This may be replaced when dependencies are built.
