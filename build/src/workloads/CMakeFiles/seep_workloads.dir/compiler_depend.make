# Empty compiler generated dependencies file for seep_workloads.
# This may be replaced when dependencies are built.
