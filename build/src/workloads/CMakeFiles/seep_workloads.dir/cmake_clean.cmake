file(REMOVE_RECURSE
  "CMakeFiles/seep_workloads.dir/lrb/lrb.cc.o"
  "CMakeFiles/seep_workloads.dir/lrb/lrb.cc.o.d"
  "CMakeFiles/seep_workloads.dir/topk/topk.cc.o"
  "CMakeFiles/seep_workloads.dir/topk/topk.cc.o.d"
  "CMakeFiles/seep_workloads.dir/wordcount/wordcount.cc.o"
  "CMakeFiles/seep_workloads.dir/wordcount/wordcount.cc.o.d"
  "libseep_workloads.a"
  "libseep_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seep_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
