file(REMOVE_RECURSE
  "libseep_workloads.a"
)
