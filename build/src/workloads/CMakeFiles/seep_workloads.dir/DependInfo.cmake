
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/lrb/lrb.cc" "src/workloads/CMakeFiles/seep_workloads.dir/lrb/lrb.cc.o" "gcc" "src/workloads/CMakeFiles/seep_workloads.dir/lrb/lrb.cc.o.d"
  "/root/repo/src/workloads/topk/topk.cc" "src/workloads/CMakeFiles/seep_workloads.dir/topk/topk.cc.o" "gcc" "src/workloads/CMakeFiles/seep_workloads.dir/topk/topk.cc.o.d"
  "/root/repo/src/workloads/wordcount/wordcount.cc" "src/workloads/CMakeFiles/seep_workloads.dir/wordcount/wordcount.cc.o" "gcc" "src/workloads/CMakeFiles/seep_workloads.dir/wordcount/wordcount.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/seep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/seep_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
