file(REMOVE_RECURSE
  "CMakeFiles/seep_serde.dir/crc32c.cc.o"
  "CMakeFiles/seep_serde.dir/crc32c.cc.o.d"
  "CMakeFiles/seep_serde.dir/frame.cc.o"
  "CMakeFiles/seep_serde.dir/frame.cc.o.d"
  "libseep_serde.a"
  "libseep_serde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seep_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
