# Empty compiler generated dependencies file for seep_serde.
# This may be replaced when dependencies are built.
