file(REMOVE_RECURSE
  "libseep_serde.a"
)
