file(REMOVE_RECURSE
  "libseep_sim.a"
)
