file(REMOVE_RECURSE
  "CMakeFiles/seep_sim.dir/network.cc.o"
  "CMakeFiles/seep_sim.dir/network.cc.o.d"
  "CMakeFiles/seep_sim.dir/simulation.cc.o"
  "CMakeFiles/seep_sim.dir/simulation.cc.o.d"
  "libseep_sim.a"
  "libseep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
