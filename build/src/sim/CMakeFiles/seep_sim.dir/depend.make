# Empty dependencies file for seep_sim.
# This may be replaced when dependencies are built.
