file(REMOVE_RECURSE
  "libseep_common.a"
)
