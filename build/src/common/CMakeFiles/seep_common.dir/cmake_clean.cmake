file(REMOVE_RECURSE
  "CMakeFiles/seep_common.dir/logging.cc.o"
  "CMakeFiles/seep_common.dir/logging.cc.o.d"
  "CMakeFiles/seep_common.dir/rng.cc.o"
  "CMakeFiles/seep_common.dir/rng.cc.o.d"
  "CMakeFiles/seep_common.dir/stats.cc.o"
  "CMakeFiles/seep_common.dir/stats.cc.o.d"
  "CMakeFiles/seep_common.dir/status.cc.o"
  "CMakeFiles/seep_common.dir/status.cc.o.d"
  "libseep_common.a"
  "libseep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seep_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
