# Empty dependencies file for seep_common.
# This may be replaced when dependencies are built.
