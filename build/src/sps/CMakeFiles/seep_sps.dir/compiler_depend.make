# Empty compiler generated dependencies file for seep_sps.
# This may be replaced when dependencies are built.
