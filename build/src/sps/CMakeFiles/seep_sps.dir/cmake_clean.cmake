file(REMOVE_RECURSE
  "CMakeFiles/seep_sps.dir/sps.cc.o"
  "CMakeFiles/seep_sps.dir/sps.cc.o.d"
  "libseep_sps.a"
  "libseep_sps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seep_sps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
