file(REMOVE_RECURSE
  "libseep_sps.a"
)
